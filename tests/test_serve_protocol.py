"""Versioned request/response schema and wire-protocol tests.

Covers the API-redesign contract: ``Query``/``QueryResult`` round-trip
through their canonical dict forms bit-exactly (every field, including
``cached``/``eps_hit``/``epoch``), unknown schema versions are rejected,
bare-tuple queries warn with ``DeprecationWarning``, and the NDJSON
envelope decoder classifies malformed input with the right error codes.
"""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.service import SCHEMA_VERSION, DiversityService, Query, QueryResult
from repro.service import protocol
from repro.service.protocol import ProtocolError
from repro.service.workload import latency_summary


# ---------------------------------------------------------------- Query


def test_query_round_trips_every_field():
    query = Query("remote-clique", 7, 0.25)
    payload = query.to_dict()
    assert payload == {"schema_version": SCHEMA_VERSION,
                       "objective": "remote-clique", "k": 7,
                       "epsilon": 0.25}
    assert Query.from_dict(payload) == query
    # JSON round trip is lossless too.
    assert Query.from_dict(json.loads(json.dumps(payload))) == query


def test_query_from_dict_defaults_schema_version_and_epsilon():
    query = Query.from_dict({"objective": "remote-edge", "k": 3})
    assert query == Query("remote-edge", 3, 1.0)


def test_query_from_dict_rejects_unknown_schema_version():
    with pytest.raises(ValidationError, match="schema_version"):
        Query.from_dict({"schema_version": SCHEMA_VERSION + 1,
                         "objective": "remote-edge", "k": 3})


def test_query_from_dict_rejects_malformed_payload():
    with pytest.raises(ValidationError, match="malformed"):
        Query.from_dict({"objective": "remote-edge"})  # no k


# ----------------------------------------------------------- QueryResult


@pytest.fixture(scope="module")
def service():
    rng = np.random.default_rng(7)
    from repro.metricspace.points import PointSet
    points = PointSet(rng.normal(size=(80, 3)))
    with DiversityService(points=points, k_max=5, seed=0) as svc:
        yield svc


def test_query_result_round_trips_every_field(service):
    solved = service.query("remote-edge", 4)
    cached = service.query("remote-edge", 4)  # LRU hit
    # Epsilon-aware reuse: solve on a large rung under a tight eps, then
    # ask again under a loose eps that routes to a smaller, uncached rung.
    tight = service.query("remote-star", 4, epsilon=0.2)
    assert service.index.route("remote-star", 4, 1.0).key != tight.rung, \
        "test needs eps to route to different rungs"
    eps_hit = service.query("remote-star", 4, epsilon=1.0)
    assert not solved.cached and cached.cached
    assert eps_hit.eps_hit and eps_hit.cached
    for result in (solved, cached, eps_hit):
        payload = json.loads(json.dumps(result.to_dict()))
        back = QueryResult.from_dict(payload)
        assert back.objective == result.objective
        assert back.k == result.k
        assert back.epsilon == result.epsilon
        assert back.value == result.value  # bit-exact through JSON
        assert back.rung == result.rung
        assert back.cached == result.cached
        assert back.eps_hit == result.eps_hit
        assert back.epoch == result.epoch
        assert back.solve_seconds == result.solve_seconds
        np.testing.assert_array_equal(back.indices, result.indices)
        np.testing.assert_array_equal(back.points, result.points)


def test_query_result_from_dict_rejects_bad_version_and_shape(service):
    payload = service.query("remote-edge", 3).to_dict()
    bad_version = dict(payload, schema_version=99)
    with pytest.raises(ValidationError, match="schema_version"):
        QueryResult.from_dict(bad_version)
    with pytest.raises(ValidationError, match="malformed"):
        QueryResult.from_dict({k: v for k, v in payload.items()
                               if k != "value"})


def test_bare_tuple_queries_warn_deprecation(service):
    with pytest.warns(DeprecationWarning, match="bare-tuple"):
        results = service.query_batch([("remote-edge", 3)])
    assert results[0].k == 3
    with pytest.warns(DeprecationWarning, match="bare-tuple"):
        service.query_concurrent([("remote-edge", 3, 1.0)], max_workers=1)


def test_query_objects_do_not_warn(service):
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        results = service.query_batch([Query("remote-edge", 3, 1.0)])
    assert results[0].cached  # warmed by the tuple test above


# -------------------------------------------------------- wire envelope


def test_decode_request_query_with_dict_and_legacy_payloads():
    line = protocol.encode_request(
        "query", 5, queries=[Query("remote-edge", 4, 1.0),
                             {"objective": "remote-clique", "k": 3},
                             ["remote-edge", 2]])
    request = protocol.decode_request(line)
    assert request.kind == "query" and request.id == 5
    assert request.queries == (Query("remote-edge", 4, 1.0),
                               Query("remote-clique", 3, 1.0),
                               Query("remote-edge", 2, 1.0))


def test_decode_request_single_query_sugar():
    request = protocol.decode_request(json.dumps(
        {"kind": "query", "query": {"objective": "remote-edge", "k": 2}}))
    assert request.queries == (Query("remote-edge", 2, 1.0),)


def test_decode_request_error_codes():
    with pytest.raises(ProtocolError) as exc:
        protocol.decode_request("{not json")
    assert exc.value.code == protocol.ERROR_BAD_REQUEST
    with pytest.raises(ProtocolError) as exc:
        protocol.decode_request(json.dumps({"v": 99, "kind": "stats"}))
    assert exc.value.code == protocol.ERROR_UNSUPPORTED_VERSION
    with pytest.raises(ProtocolError) as exc:
        protocol.decode_request(json.dumps({"kind": "frobnicate"}))
    assert exc.value.code == protocol.ERROR_BAD_REQUEST
    with pytest.raises(ProtocolError) as exc:
        protocol.decode_request(json.dumps({"kind": "query", "queries": []}))
    assert exc.value.code == protocol.ERROR_BAD_REQUEST
    with pytest.raises(ProtocolError) as exc:
        protocol.decode_request(json.dumps(
            {"kind": "query",
             "queries": [{"objective": "remote-edge", "k": 2,
                          "schema_version": 99}]}))
    assert exc.value.code == protocol.ERROR_BAD_REQUEST
    with pytest.raises(ProtocolError) as exc:
        protocol.decode_request(json.dumps({"kind": "refresh"}))
    assert exc.value.code == protocol.ERROR_BAD_REQUEST


def test_decode_request_threads_the_dataset_field():
    line = protocol.encode_request(
        "query", 1, queries=[Query("remote-edge", 3, 1.0)], dataset="eu")
    assert protocol.decode_request(line).dataset == "eu"
    line = protocol.encode_request("refresh", 2, data="/x", dataset="us")
    assert protocol.decode_request(line).dataset == "us"
    # The field is optional — absent means "route to the default".
    bare = protocol.decode_request(protocol.encode_request("stats"))
    assert bare.dataset is None
    assert "dataset" not in json.loads(protocol.encode_request("stats"))


def test_decode_request_tenants_kind():
    request = protocol.decode_request(protocol.encode_request("tenants", 9))
    assert request.kind == "tenants" and request.id == 9
    assert "tenants" in protocol.REQUEST_KINDS


def test_decode_request_rejects_malformed_dataset():
    for bad in ("", 7, ["eu"]):
        with pytest.raises(ProtocolError) as exc:
            protocol.decode_request(json.dumps(
                {"kind": "query", "dataset": bad,
                 "queries": [{"objective": "remote-edge", "k": 2}]}))
        assert exc.value.code == protocol.ERROR_BAD_REQUEST


def test_response_encoding_round_trip(service):
    results = service.query_batch([Query("remote-clique", 4, 1.0)])
    line = protocol.encode_results("abc", results)
    response = protocol.decode_response(line)
    assert response["ok"] and response["id"] == "abc"
    assert response["v"] == protocol.PROTOCOL_VERSION
    back = protocol.results_of(response)
    assert back[0].value == results[0].value
    np.testing.assert_array_equal(back[0].indices, results[0].indices)

    error = protocol.decode_response(protocol.encode_error(
        7, protocol.ERROR_OVERLOADED, "full", retry_after_ms=50.0))
    assert not error["ok"]
    assert error["error"]["code"] == "overloaded"
    assert error["error"]["retry_after_ms"] == 50.0
    plain = protocol.decode_response(protocol.encode_error(
        8, protocol.ERROR_BAD_REQUEST, "nope"))
    assert "retry_after_ms" not in plain["error"]

    with pytest.raises(ValueError):
        protocol.decode_response(json.dumps({"no": "ok-field"}))


# ------------------------------------------------------ latency summary


def test_latency_summary_percentiles_and_empty():
    empty = latency_summary([])
    assert empty["count"] == 0 and empty["p99_ms"] is None
    block = latency_summary([0.001 * (i + 1) for i in range(100)])
    assert block["count"] == 100
    assert block["p50_ms"] == pytest.approx(50.5, abs=0.5)
    assert block["p99_ms"] == pytest.approx(99.01, abs=0.5)
    assert block["max_ms"] == pytest.approx(100.0)
    assert block["p50_ms"] <= block["p95_ms"] <= block["p99_ms"]


# ------------------------------------------------- rejection accounting


def test_error_line_carries_dataset_and_retry_fields():
    line = protocol.encode_error(3, protocol.ERROR_OVERLOADED, "tenant full",
                                 retry_after_ms=125.0, dataset="eu")
    error = protocol.decode_response(line)["error"]
    assert error["dataset"] == "eu"
    assert error["retry_after_ms"] == 125.0
    # Absent dataset stays absent — single-index daemons are unchanged.
    bare = protocol.decode_response(protocol.encode_error(
        4, protocol.ERROR_OVERLOADED, "full"))
    assert "dataset" not in bare["error"]
    exc = ProtocolError(protocol.ERROR_OVERLOADED, "x",
                        retry_after_ms=10.0, dataset="us")
    assert (exc.retry_after_ms, exc.dataset) == (10.0, "us")


def test_server_stats_reject_updates_all_three_views():
    """Every rejection shows up globally, per-client AND per-tenant."""
    from repro.service import ServerStats

    counters = ServerStats()
    counters.reject("1.2.3.4:1", "eu")
    counters.reject("1.2.3.4:1", "eu")
    counters.reject("5.6.7.8:2", "us", draining=True)
    counters.reject("5.6.7.8:2", None)  # single-index: no tenant split
    assert counters.rejected_overload == 3
    assert counters.rejected_draining == 1
    assert counters.clients["1.2.3.4:1"].rejected == 2
    assert counters.clients["5.6.7.8:2"].rejected == 2
    assert counters.rejected_datasets == {"eu": 2, "us": 1}


def test_refresh_while_draining_counts_per_client_and_per_tenant():
    """Regression: a refresh refused mid-drain used to bump no counter
    at all — neither the per-client block nor ``rejected_draining`` —
    so drained refreshes vanished from the stats.  Pin the fix: the
    refusal lands in all three views and the error names the tenant."""
    import asyncio

    from repro.metricspace.points import PointSet
    from repro.service import (
        DiversityServer,
        IndexRegistry,
        ServerConfig,
        build_coreset_index,
    )

    rng = np.random.default_rng(13)
    index = build_coreset_index(PointSet(rng.normal(size=(90, 3))), 4, seed=0)
    registry = IndexRegistry()
    registry.register("eu", index)

    async def run():
        server = DiversityServer(registry, ServerConfig())
        host, port = await server.start()
        server._draining = True  # simulate mid-drain admission attempt
        try:
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(protocol.encode_request(
                "refresh", 1, data="/nowhere", dataset="eu").encode())
            await writer.drain()
            response = protocol.decode_response(await reader.readline())
            writer.close()
            await writer.wait_closed()
        finally:
            server._draining = False
            await server.shutdown()
        return response, server.stats()["server"]

    response, stats = asyncio.run(run())
    assert response["error"]["code"] == "shutting_down"
    assert response["error"]["dataset"] == "eu"
    assert stats["rejected_draining"] == 1
    assert stats["rejected_datasets"] == {"eu": 1}
    (client_block,) = stats["clients"].values()
    assert client_block["rejected"] == 1
