"""Tests for characterization quantities and composable core-set guarantees.

This file verifies the paper's *core* claim empirically: the constructions
yield (1+eps)-core-sets — ``div_k(T) >= div_k(S) / (1 + eps)`` — and the
composable version survives arbitrary partitioning (Definition 2).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coresets.characterization import (
    coreset_farness,
    coreset_range,
    injective_proxy_distance_bound,
    proxy_distance_bound,
)
from repro.coresets.composable import (
    build_composable_coreset,
    coreset_size_for,
    epsilon_prime_for,
    union_coresets,
)
from repro.coresets.generalized import GeneralizedCoreset
from repro.diversity.exact import divk_exact
from repro.diversity.generalized import gen_divk_exact
from repro.exceptions import ValidationError
from repro.metricspace.points import PointSet


class TestCharacterization:
    def test_range_on_line(self, line_points):
        # T = {0, 16}: farthest remaining point is 8 -> range 8.
        assert coreset_range(line_points, np.asarray([0, 5])) == pytest.approx(8.0)

    def test_farness_on_line(self, line_points):
        assert coreset_farness(line_points, np.asarray([0, 2, 5])) == pytest.approx(2.0)

    def test_range_of_everything_is_zero(self, small_points):
        all_idx = np.arange(len(small_points))
        assert coreset_range(small_points, all_idx) == pytest.approx(0.0)

    def test_proxy_bound_matches_range_for_full_candidates(self, medium_points):
        subset = np.asarray([0, 5, 10, 50])
        coreset = medium_points.subset(subset)
        bound = proxy_distance_bound(medium_points, coreset,
                                     np.arange(len(medium_points)))
        assert bound == pytest.approx(coreset_range(medium_points, subset))

    def test_injective_bound_at_least_plain_bound(self, medium_points):
        coreset = medium_points.subset(np.arange(20))
        candidates = np.asarray([100, 150, 200])
        plain = proxy_distance_bound(medium_points, coreset, candidates)
        injective = injective_proxy_distance_bound(medium_points, coreset,
                                                   candidates)
        assert injective >= plain - 1e-12

    def test_injective_bound_infinite_when_coreset_too_small(self, medium_points):
        coreset = medium_points.subset([0, 1])
        candidates = np.asarray([3, 4, 5])
        assert injective_proxy_distance_bound(
            medium_points, coreset, candidates) == float("inf")

    def test_injective_bound_exact_matching_case(self):
        # Two candidates both nearest to the same core-set point: injective
        # bound must route the second to the farther core-set point.
        pts = PointSet([[0.0], [0.1], [0.2], [5.0]])
        coreset = pts.subset([0, 3])
        candidates = np.asarray([1, 2])
        bound = injective_proxy_distance_bound(pts, coreset, candidates)
        assert bound == pytest.approx(4.8)

    def test_empty_coreset_rejected(self, small_points):
        with pytest.raises(ValidationError):
            coreset_range(small_points, np.asarray([], dtype=int))


class TestSizing:
    def test_epsilon_prime_relation(self):
        """1/(1 - eps') = 1 + eps/alpha."""
        for eps, alpha in [(0.5, 1.0), (0.2, 2.0), (1.0, 4.0)]:
            eps_prime = epsilon_prime_for(eps, alpha)
            assert 1.0 / (1.0 - eps_prime) == pytest.approx(1.0 + eps / alpha)

    def test_coreset_size_grows_with_dimension(self):
        small = coreset_size_for(4, 0.5, 1.0, "remote-edge")
        large = coreset_size_for(4, 0.5, 3.0, "remote-edge")
        assert large > small

    def test_coreset_size_grows_as_epsilon_shrinks(self):
        loose = coreset_size_for(4, 1.0, 2.0, "remote-edge")
        tight = coreset_size_for(4, 0.1, 2.0, "remote-edge")
        assert tight > loose

    def test_streaming_constant_larger_than_mr(self):
        mr = coreset_size_for(4, 0.5, 2.0, "remote-edge", model="mapreduce")
        streaming = coreset_size_for(4, 0.5, 2.0, "remote-edge", model="streaming")
        assert streaming > mr

    def test_injective_constant_larger(self):
        edge = coreset_size_for(4, 0.5, 2.0, "remote-edge")
        clique = coreset_size_for(4, 0.5, 2.0, "remote-clique")
        assert clique > edge

    def test_bad_model_rejected(self):
        with pytest.raises(ValueError):
            coreset_size_for(4, 0.5, 2.0, "remote-edge", model="mpi")

    def test_bad_epsilon_rejected(self):
        with pytest.raises(ValidationError):
            coreset_size_for(4, 0.0, 2.0, "remote-edge")


@pytest.fixture
def partitioned(rng):
    """A 40-point instance in 3 disjoint partitions (exact-solver sized)."""
    data = rng.random((40, 2)) * 10.0
    points = PointSet(data)
    order = rng.permutation(40)
    parts = [points.subset(chunk) for chunk in np.array_split(order, 3)]
    return points, parts


class TestComposableCoresets:
    @pytest.mark.parametrize("objective", ["remote-edge", "remote-cycle"])
    def test_gmm_coreset_quality(self, partitioned, objective):
        """div_k(union of core-sets) close to div_k(S) for Lemma-1 objectives."""
        points, parts = partitioned
        k = 3
        coresets = [build_composable_coreset(p, k, 12, objective) for p in parts]
        union = union_coresets(coresets)
        global_opt = divk_exact(points, k, objective)
        coreset_opt = divk_exact(union, k, objective)
        assert coreset_opt >= global_opt / 1.3 - 1e-9  # generous eps

    @pytest.mark.parametrize("objective", ["remote-clique", "remote-star",
                                           "remote-tree"])
    def test_ext_coreset_quality(self, partitioned, objective):
        points, parts = partitioned
        k = 3
        coresets = [build_composable_coreset(p, k, 8, objective) for p in parts]
        union = union_coresets(coresets)
        global_opt = divk_exact(points, k, objective)
        coreset_opt = divk_exact(union, k, objective)
        assert coreset_opt >= global_opt / 1.3 - 1e-9

    def test_small_partition_is_its_own_coreset(self, rng):
        tiny = PointSet(rng.random((5, 2)))
        out = build_composable_coreset(tiny, 2, 8, "remote-edge")
        assert out is tiny

    def test_generalized_coreset_quality(self, partitioned):
        points, parts = partitioned
        k = 3
        coresets = [
            build_composable_coreset(p, k, 8, "remote-clique", use_generalized=True)
            for p in parts
        ]
        union = union_coresets(coresets)
        assert isinstance(union, GeneralizedCoreset)
        global_opt = divk_exact(points, k, "remote-clique")
        gen_opt = gen_divk_exact(union, k, "remote-clique")
        assert gen_opt >= global_opt / 1.3 - 1e-9

    def test_generalized_small_partition(self, rng):
        tiny = PointSet(rng.random((4, 2)))
        out = build_composable_coreset(tiny, 2, 8, "remote-clique",
                                       use_generalized=True)
        assert isinstance(out, GeneralizedCoreset)
        assert out.size == 4
        assert np.all(out.multiplicities == 1)

    def test_union_rejects_mixed_kinds(self, rng):
        plain = PointSet(rng.random((3, 2)))
        gen = GeneralizedCoreset(points=rng.random((2, 2)),
                                 multiplicities=np.asarray([1, 1]),
                                 metric=plain.metric)
        with pytest.raises(ValueError):
            union_coresets([gen, plain])

    def test_union_rejects_empty(self):
        with pytest.raises(ValueError):
            union_coresets([])

    def test_delegate_cap_respected(self, partitioned):
        _, parts = partitioned
        out = build_composable_coreset(parts[0], 5, 4, "remote-clique",
                                       delegate_cap=2)
        # Cap 2 delegates per kernel cluster: at most 2 * k' points.
        assert len(out) <= 2 * 4


class TestGeneralizedCoresetContainer:
    def test_sizes(self):
        core = GeneralizedCoreset(points=np.asarray([[0.0], [1.0]]),
                                  multiplicities=np.asarray([2, 3]),
                                  metric=PointSet([[0.0]]).metric)
        assert core.size == 2
        assert core.expanded_size == 5
        assert len(core) == 2

    def test_owners(self):
        core = GeneralizedCoreset(points=np.asarray([[0.0], [1.0]]),
                                  multiplicities=np.asarray([2, 1]),
                                  metric=PointSet([[0.0]]).metric)
        assert core.expansion_owners().tolist() == [0, 0, 1]

    def test_coherence_enforced(self):
        core = GeneralizedCoreset(points=np.asarray([[0.0], [1.0]]),
                                  multiplicities=np.asarray([2, 1]),
                                  metric=PointSet([[0.0]]).metric)
        with pytest.raises(ValidationError):
            core.coherent_subset(np.asarray([0, 1]), np.asarray([3, 1]))

    def test_coherent_subset_drops_zero_counts(self):
        core = GeneralizedCoreset(points=np.asarray([[0.0], [1.0]]),
                                  multiplicities=np.asarray([2, 1]),
                                  metric=PointSet([[0.0]]).metric)
        subset = core.coherent_subset(np.asarray([0, 1]), np.asarray([1, 0]))
        assert subset.size == 1
        assert subset.expanded_size == 1

    def test_zero_multiplicity_rejected(self):
        with pytest.raises(ValidationError):
            GeneralizedCoreset(points=np.asarray([[0.0]]),
                               multiplicities=np.asarray([0]),
                               metric=PointSet([[0.0]]).metric)
