"""Tests for GMM-EXT (delegates) and GMM-GEN (multiplicities)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coresets.gmm import gmm
from repro.coresets.gmm_ext import gmm_ext
from repro.coresets.gmm_gen import gmm_gen
from repro.coresets.characterization import injective_proxy_distance_bound
from repro.diversity.exact import divk_exact_subset
from repro.metricspace.points import PointSet


@pytest.fixture
def clustered(rng) -> PointSet:
    """Four tight clusters of 10 points each, far apart (exact-solver sized)."""
    centers = np.asarray([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [10.0, 10.0]])
    data = np.vstack([
        center + 0.1 * rng.normal(size=(10, 2)) for center in centers
    ])
    return PointSet(data[rng.permutation(40)])


class TestGMMExt:
    def test_size_bound(self, clustered):
        result = gmm_ext(clustered, k=3, k_prime=4)
        assert len(result.indices) <= 3 * 4
        assert len(set(result.indices.tolist())) == len(result.indices)

    def test_cluster_sizes_capped_at_k(self, clustered):
        result = gmm_ext(clustered, k=3, k_prime=4)
        assert np.all(result.cluster_sizes >= 1)
        assert np.all(result.cluster_sizes <= 3)

    def test_kernel_centers_included(self, clustered):
        result = gmm_ext(clustered, k=3, k_prime=4)
        for center in result.kernel.indices:
            assert center in result.indices

    def test_delegates_are_in_their_cluster(self, clustered):
        result = gmm_ext(clustered, k=5, k_prime=4)
        kernel = result.kernel
        # Every selected point's nearest kernel center assignment matches a
        # cluster that contributed it; verify via distance: each delegate is
        # within the cluster radius of its center.
        selected = set(result.indices.tolist())
        assert selected  # non-empty
        for j, center in enumerate(kernel.indices):
            members = np.flatnonzero(kernel.assignment == j)
            contributed = [i for i in members if i in selected]
            assert 1 <= len(contributed) <= 5

    def test_injective_proxy_exists_for_optimum(self, clustered):
        """The EXT core-set admits an injective proxy for the optimal
        solution within a small distance (the hypothesis of Lemma 2)."""
        k = 4
        result = gmm_ext(clustered, k=k, k_prime=8)
        coreset = clustered.subset(result.indices)
        _, optimum = divk_exact_subset(clustered, k, "remote-edge")
        bound = injective_proxy_distance_bound(
            clustered, coreset, np.asarray(optimum)
        )
        # Clusters have radius ~0.5; k'=8 kernels split them finely.
        assert bound <= 1.0

    def test_k_prime_lt_k_still_yields_k_points(self, clustered):
        # k' < k is legal for EXT: one cluster can contribute up to k points.
        result = gmm_ext(clustered, k=6, k_prime=2)
        assert len(result.indices) >= 6


class TestGMMGen:
    def test_multiplicities_match_ext_cluster_sizes(self, clustered):
        ext = gmm_ext(clustered, k=3, k_prime=4)
        gen = gmm_gen(clustered, k=3, k_prime=4)
        assert gen.size == 4
        assert np.array_equal(
            np.sort(gen.multiplicities), np.sort(ext.cluster_sizes)
        )

    def test_kernel_points_are_gmm_centers(self, clustered):
        gen = gmm_gen(clustered, k=3, k_prime=4)
        kernel = gmm(clustered, 4)
        assert np.allclose(gen.points, clustered.points[kernel.indices])

    def test_expanded_size_bound(self, clustered):
        gen = gmm_gen(clustered, k=3, k_prime=4)
        assert gen.expanded_size <= 3 * 4
        assert gen.expanded_size >= 4  # every kernel point appears

    def test_multiplicity_floor_of_one(self, rng):
        # k' = n: every point its own cluster of size 1.
        pts = PointSet(rng.random((6, 2)))
        gen = gmm_gen(pts, k=2, k_prime=6)
        assert np.all(gen.multiplicities == 1)

    def test_k_prime_lt_k_expanded_size_covers_k(self, clustered):
        gen = gmm_gen(clustered, k=6, k_prime=2)
        assert gen.expanded_size >= 6
