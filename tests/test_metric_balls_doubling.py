"""Tests for ball covers, epsilon-nets, and doubling-dimension estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metricspace.balls import (
    ball_members,
    covering_number,
    epsilon_net,
    greedy_ball_cover,
)
from repro.metricspace.doubling import estimate_doubling_dimension
from repro.metricspace.points import PointSet


class TestGreedyBallCover:
    def test_zero_radius_covers_each_distinct_point(self):
        ps = PointSet([[0.0], [1.0], [2.0]])
        assert len(greedy_ball_cover(ps, 0.0)) == 3

    def test_huge_radius_needs_one_ball(self, medium_points):
        centers = greedy_ball_cover(medium_points, medium_points.diameter())
        assert len(centers) == 1

    def test_cover_property(self, medium_points):
        radius = 0.5
        centers = greedy_ball_cover(medium_points, radius)
        dist = medium_points.cross(medium_points.subset(centers))
        assert float(dist.min(axis=1).max()) <= radius + 1e-12

    def test_centers_are_separated(self, medium_points):
        """The greedy cover is an epsilon-net: centers pairwise > radius."""
        radius = 0.5
        centers = epsilon_net(medium_points, radius)
        if len(centers) >= 2:
            sub = medium_points.subset(centers)
            mat = sub.pairwise()
            iu, ju = np.triu_indices(len(centers), k=1)
            assert float(mat[iu, ju].min()) > radius

    def test_negative_radius_rejected(self, small_points):
        with pytest.raises(ValueError):
            greedy_ball_cover(small_points, -0.1)

    def test_covering_number_monotone_in_radius(self, medium_points):
        small = covering_number(medium_points, 0.2)
        large = covering_number(medium_points, 1.0)
        assert small >= large


class TestBallMembers:
    def test_members_within_radius(self, line_points):
        members = ball_members(line_points, 0, 2.5)  # center 0.0
        assert set(members.tolist()) == {0, 1, 2}


class TestDoublingDimension:
    def test_line_has_low_dimension(self, rng):
        points = PointSet(np.linspace(0, 1, 200).reshape(-1, 1))
        estimate = estimate_doubling_dimension(points, seed=0)
        assert 0.0 < estimate <= 2.5

    def test_higher_dimension_for_cube(self, rng):
        line = PointSet(np.linspace(0, 1, 300).reshape(-1, 1))
        cube = PointSet(rng.random((300, 3)))
        d_line = estimate_doubling_dimension(line, seed=0, quantile=0.9)
        d_cube = estimate_doubling_dimension(cube, seed=0, quantile=0.9)
        assert d_cube > d_line

    def test_single_point(self):
        assert estimate_doubling_dimension(PointSet([[0.0]])) == 0.0

    def test_identical_points(self):
        ps = PointSet(np.zeros((10, 2)))
        assert estimate_doubling_dimension(ps, seed=0) == 0.0
