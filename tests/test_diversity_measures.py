"""Tests for the six diversity measure evaluators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diversity.measures import (
    evaluate_diversity,
    remote_bipartition_value,
    remote_clique_value,
    remote_cycle_value,
    remote_edge_value,
    remote_star_value,
    remote_tree_value,
)
from repro.exceptions import ValidationError

# Fixed 4-point instance on a line: 0, 1, 3, 7.
XS = np.asarray([0.0, 1.0, 3.0, 7.0])
DIST = np.abs(XS[:, None] - XS[None, :])


class TestKnownValues:
    def test_remote_edge(self):
        assert remote_edge_value(DIST) == pytest.approx(1.0)

    def test_remote_clique(self):
        # Pairs: 1+3+7+2+6+4 = 23.
        assert remote_clique_value(DIST) == pytest.approx(23.0)

    def test_remote_star(self):
        # Star sums: 11 (at 0), 9 (at 1), 9 (at 3), 17 (at 7) -> 9.
        assert remote_star_value(DIST) == pytest.approx(9.0)

    def test_remote_bipartition(self):
        # Balanced cuts of {0,1,3,7} into pairs; min is {0,1}|{3,7}:
        # 3+7+2+6 = 18?  {0,3}|{1,7}: 1+7+2+4=14.  {0,7}|{1,3}: 1+3+6+4=14.
        assert remote_bipartition_value(DIST) == pytest.approx(14.0)

    def test_remote_tree(self):
        # Chain MST: 1 + 2 + 4 = 7.
        assert remote_tree_value(DIST) == pytest.approx(7.0)

    def test_remote_cycle(self):
        # Optimal tour on a line: 2 * span = 14.
        assert remote_cycle_value(DIST) == pytest.approx(14.0)


class TestDegenerateSizes:
    @pytest.mark.parametrize("measure", [
        remote_edge_value, remote_clique_value, remote_star_value,
        remote_bipartition_value, remote_tree_value, remote_cycle_value,
    ])
    def test_singleton_is_zero(self, measure):
        assert measure(np.zeros((1, 1))) == 0.0

    def test_pair_values(self):
        dist = np.asarray([[0.0, 5.0], [5.0, 0.0]])
        assert remote_edge_value(dist) == pytest.approx(5.0)
        assert remote_clique_value(dist) == pytest.approx(5.0)
        assert remote_star_value(dist) == pytest.approx(5.0)
        assert remote_tree_value(dist) == pytest.approx(5.0)
        assert remote_cycle_value(dist) == pytest.approx(10.0)
        assert remote_bipartition_value(dist) == pytest.approx(5.0)


class TestRelations:
    """Structural inequalities relating the measures on any instance."""

    def test_edge_lower_bounds_everything(self, rng):
        pts = rng.random((8, 2))
        dist = np.linalg.norm(pts[:, None] - pts[None, :], axis=2)
        k = 8
        edge = remote_edge_value(dist)
        assert remote_tree_value(dist) >= (k - 1) * edge - 1e-9
        assert remote_clique_value(dist) >= k * (k - 1) / 2 * edge - 1e-9
        assert remote_star_value(dist) >= (k - 1) * edge - 1e-9

    def test_tree_le_cycle(self, rng):
        """MST weight is a lower bound on any tour weight."""
        pts = rng.random((9, 2))
        dist = np.linalg.norm(pts[:, None] - pts[None, :], axis=2)
        assert remote_tree_value(dist) <= remote_cycle_value(dist) + 1e-9

    def test_star_le_clique(self, rng):
        pts = rng.random((7, 2))
        dist = np.linalg.norm(pts[:, None] - pts[None, :], axis=2)
        assert remote_star_value(dist) <= remote_clique_value(dist) + 1e-9


class TestDispatch:
    def test_evaluate_by_name(self):
        assert evaluate_diversity("remote-edge", DIST) == pytest.approx(1.0)

    def test_unknown_name(self):
        with pytest.raises(ValidationError):
            evaluate_diversity("remote-triangle", DIST)

    def test_rejects_non_square(self):
        with pytest.raises(ValidationError):
            remote_edge_value(np.zeros((2, 3)))
