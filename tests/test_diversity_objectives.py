"""Tests for the objective registry metadata."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diversity.objectives import (
    OBJECTIVES,
    get_objective,
    list_objectives,
)
from repro.exceptions import ValidationError


class TestRegistry:
    def test_all_six_present(self):
        assert list_objectives() == sorted([
            "remote-edge", "remote-clique", "remote-star",
            "remote-bipartition", "remote-tree", "remote-cycle",
        ])

    def test_get_by_name_and_passthrough(self):
        objective = get_objective("remote-tree")
        assert objective.name == "remote-tree"
        assert get_objective(objective) is objective

    def test_unknown(self):
        with pytest.raises(ValidationError):
            get_objective("remote-galaxy")


class TestMetadata:
    def test_injectivity_split_matches_lemmas(self):
        """Lemma 1 covers edge+cycle; Lemma 2 the other four."""
        non_injective = {name for name, obj in OBJECTIVES.items()
                         if not obj.requires_injective_proxy}
        assert non_injective == {"remote-edge", "remote-cycle"}

    def test_coreset_constants(self):
        """Lemmas 3-6: 32/64 streaming, 8/16 MapReduce."""
        for objective in OBJECTIVES.values():
            if objective.requires_injective_proxy:
                assert (objective.mr_constant, objective.streaming_constant) == (16, 64)
            else:
                assert (objective.mr_constant, objective.streaming_constant) == (8, 32)

    def test_sequential_alphas_match_table1(self):
        expected = {
            "remote-edge": 2.0, "remote-clique": 2.0, "remote-star": 2.0,
            "remote-bipartition": 3.0, "remote-tree": 4.0, "remote-cycle": 3.0,
        }
        for name, alpha in expected.items():
            assert OBJECTIVES[name].sequential_alpha == alpha

    def test_f_k_values_match_lemma7(self):
        k = 10
        assert OBJECTIVES["remote-clique"].f_k(k) == 45
        assert OBJECTIVES["remote-star"].f_k(k) == 9
        assert OBJECTIVES["remote-tree"].f_k(k) == 9
        assert OBJECTIVES["remote-bipartition"].f_k(k) == 25
        assert OBJECTIVES["remote-cycle"].f_k(k) == 10
        assert OBJECTIVES["remote-edge"].f_k(k) == 1

    def test_f_k_odd_bipartition(self):
        # floor(7/2) * ceil(7/2) = 3 * 4.
        assert OBJECTIVES["remote-bipartition"].f_k(7) == 12

    def test_value_delegates_to_evaluator(self):
        xs = np.asarray([0.0, 2.0, 5.0])
        dist = np.abs(xs[:, None] - xs[None, :])
        assert get_objective("remote-edge").value(dist) == pytest.approx(2.0)
