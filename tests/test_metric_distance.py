"""Tests for the distance kernels, including metric-axiom property tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ValidationError
from repro.metricspace.blocked import blocked_cross
from repro.metricspace.distance import (
    ChebyshevMetric,
    CosineDistance,
    EuclideanMetric,
    HammingDistance,
    JaccardDistance,
    ManhattanMetric,
    get_metric,
)

ALL_METRICS = [
    EuclideanMetric(),
    ManhattanMetric(),
    ChebyshevMetric(),
    CosineDistance(),
    JaccardDistance(),
    HammingDistance(),
]


def _valid_points(metric, rng, n=8, d=3):
    """Random points in the metric's domain."""
    raw = rng.normal(size=(n, d))
    if metric.name == "cosine":
        return raw + np.sign(raw) * 0.1 + 1e-9  # keep away from zero vector
    if metric.name == "jaccard":
        return np.abs(raw)
    if metric.name == "hamming":
        return (raw > 0).astype(float)
    return raw


@pytest.mark.parametrize("metric", ALL_METRICS, ids=lambda m: m.name)
class TestMetricContract:
    def test_pairwise_shape_and_zero_diagonal(self, metric, rng):
        pts = _valid_points(metric, rng)
        mat = metric.pairwise(pts)
        assert mat.shape == (8, 8)
        assert np.allclose(np.diag(mat), 0.0)

    def test_symmetry(self, metric, rng):
        pts = _valid_points(metric, rng)
        mat = metric.pairwise(pts)
        assert np.allclose(mat, mat.T, atol=1e-9)

    def test_non_negative(self, metric, rng):
        pts = _valid_points(metric, rng)
        assert np.all(metric.pairwise(pts) >= 0.0)

    def test_triangle_inequality(self, metric, rng):
        pts = _valid_points(metric, rng, n=10)
        mat = metric.pairwise(pts)
        n = mat.shape[0]
        lhs = mat[:, :, None]
        rhs = mat[:, None, :] + mat[None, :, :]
        assert np.all(lhs <= rhs + 1e-9), f"{metric.name} violates triangle inequality"

    def test_cross_matches_pairwise(self, metric, rng):
        pts = _valid_points(metric, rng)
        cross = metric.cross(pts, pts)
        pair = metric.pairwise(pts)
        off_diag = ~np.eye(len(pts), dtype=bool)
        assert np.allclose(cross[off_diag], pair[off_diag], atol=1e-9)

    def test_scalar_distance(self, metric, rng):
        pts = _valid_points(metric, rng, n=2)
        expected = metric.pairwise(pts)[0, 1]
        assert metric.distance(pts[0], pts[1]) == pytest.approx(expected, abs=1e-9)

    def test_point_to_set(self, metric, rng):
        pts = _valid_points(metric, rng)
        dist = metric.point_to_set(pts[0], pts)
        assert dist.shape == (8,)
        assert dist[0] == pytest.approx(0.0, abs=1e-9)

    def test_blocked_matches_direct(self, metric, rng):
        left = _valid_points(metric, rng, n=9)
        right = _valid_points(metric, rng, n=5)
        direct = metric.cross(left, right)
        blocked = blocked_cross(metric, left, right, tile_rows=2)
        assert np.allclose(direct, blocked, atol=1e-12)


class TestEuclidean:
    def test_known_value(self):
        assert EuclideanMetric().distance([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)

    def test_matches_numpy_norm(self, rng):
        pts = rng.normal(size=(6, 4))
        mat = EuclideanMetric().pairwise(pts)
        for i in range(6):
            for j in range(6):
                assert mat[i, j] == pytest.approx(np.linalg.norm(pts[i] - pts[j]), abs=1e-9)


class TestManhattanChebyshev:
    def test_known_values(self):
        assert ManhattanMetric().distance([0.0, 0.0], [1.0, 2.0]) == pytest.approx(3.0)
        assert ChebyshevMetric().distance([0.0, 0.0], [1.0, 2.0]) == pytest.approx(2.0)

    def test_chebyshev_le_manhattan(self, rng):
        pts = rng.normal(size=(7, 3))
        assert np.all(ChebyshevMetric().pairwise(pts) <= ManhattanMetric().pairwise(pts) + 1e-12)


class TestCosine:
    def test_orthogonal_vectors(self):
        metric = CosineDistance()
        assert metric.distance([1.0, 0.0], [0.0, 1.0]) == pytest.approx(np.pi / 2)

    def test_opposite_vectors(self):
        metric = CosineDistance()
        assert metric.distance([1.0, 0.0], [-1.0, 0.0]) == pytest.approx(np.pi)

    def test_scale_invariance(self):
        metric = CosineDistance()
        assert metric.distance([1.0, 2.0], [3.0, 6.0]) == pytest.approx(0.0, abs=1e-6)

    def test_zero_vector_rejected(self):
        with pytest.raises(ValidationError):
            CosineDistance().distance([0.0, 0.0], [1.0, 0.0])


class TestJaccard:
    def test_binary_sets(self):
        # {a, b} vs {b, c}: |intersection|=1, |union|=3.
        metric = JaccardDistance()
        assert metric.distance([1.0, 1.0, 0.0], [0.0, 1.0, 1.0]) == pytest.approx(2.0 / 3.0)

    def test_identical_is_zero(self):
        assert JaccardDistance().distance([2.0, 3.0], [2.0, 3.0]) == pytest.approx(0.0)

    def test_disjoint_supports_are_at_distance_one(self):
        assert JaccardDistance().distance([1.0, 0.0], [0.0, 1.0]) == pytest.approx(1.0)

    def test_two_zero_vectors_are_identical(self):
        # The undefined 0/0 case takes the identity convention: two empty
        # sets are the same set, so their distance is zero.
        left = np.asarray([[0.0, 0.0]])
        assert JaccardDistance().cross(left, left)[0, 0] == pytest.approx(0.0)

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            JaccardDistance().distance([-1.0], [1.0])


class TestHamming:
    def test_known_value(self):
        assert HammingDistance().distance([0.0, 1.0, 1.0], [1.0, 1.0, 0.0]) == pytest.approx(2.0)


class TestRegistry:
    @pytest.mark.parametrize("name", ["euclidean", "manhattan", "chebyshev",
                                      "cosine", "jaccard", "hamming"])
    def test_lookup(self, name):
        assert get_metric(name).name == name

    def test_instance_passthrough(self):
        metric = EuclideanMetric()
        assert get_metric(metric) is metric

    def test_unknown_name(self):
        with pytest.raises(ValidationError):
            get_metric("taxicab")


@settings(max_examples=40, deadline=None)
@given(points=arrays(np.float64, (5, 3),
                     elements=st.floats(-100, 100, allow_nan=False)))
def test_euclidean_triangle_inequality_property(points):
    mat = EuclideanMetric().pairwise(points)
    lhs = mat[:, :, None]
    rhs = mat[:, None, :] + mat[None, :, :]
    assert np.all(lhs <= rhs + 1e-6)


@settings(max_examples=40, deadline=None)
@given(points=arrays(np.float64, (5, 3), elements=st.floats(0, 50, allow_nan=False)))
def test_jaccard_triangle_inequality_property(points):
    mat = JaccardDistance().pairwise(points)
    lhs = mat[:, :, None]
    rhs = mat[:, None, :] + mat[None, :, :]
    assert np.all(lhs <= rhs + 1e-9)
