"""Tests for the standalone k-center clustering APIs."""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest

from repro.clustering.kcenter import (
    clustering_radius,
    kcenter_greedy,
    kcenter_streaming,
)
from repro.exceptions import InsufficientPointsError
from repro.metricspace.points import PointSet
from repro.streaming.stream import ArrayStream


def _optimal_radius(points: PointSet, k: int) -> float:
    dist = points.pairwise()
    best = np.inf
    for subset in combinations(range(len(points)), k):
        idx = np.asarray(subset)
        best = min(best, float(dist[:, idx].min(axis=1).max()))
    return best


class TestGreedy:
    def test_two_cluster_instance(self):
        points = PointSet([[0.0], [0.2], [10.0], [10.2]])
        result = kcenter_greedy(points, 2)
        assert result.radius == pytest.approx(0.2)
        assert result.k == 2
        assert result.assignment is not None
        # Points 0,1 share a center; points 2,3 share the other.
        assert result.assignment[0] == result.assignment[1]
        assert result.assignment[2] == result.assignment[3]

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_2_approximation(self, k, rng):
        points = PointSet(rng.random((12, 2)))
        result = kcenter_greedy(points, k)
        assert result.radius <= 2.0 * _optimal_radius(points, k) + 1e-9

    def test_radius_matches_recomputation(self, medium_points):
        result = kcenter_greedy(medium_points, 6)
        assert result.radius == pytest.approx(
            clustering_radius(medium_points, result.centers))

    def test_k_too_large(self, small_points):
        with pytest.raises(InsufficientPointsError):
            kcenter_greedy(small_points, len(small_points) + 1)


class TestStreaming:
    def test_covers_stream_within_bound(self, rng):
        data = rng.random((500, 2)) * 10.0
        points = PointSet(data)
        result = kcenter_streaming(ArrayStream(data), 5)
        actual = clustering_radius(points, result.centers)
        assert actual <= result.radius + 1e-9
        assert result.k == 5

    def test_8_approximation_empirically(self, rng):
        """The doubling algorithm's *actual* radius (not just the bound)
        stays within 8x optimal on random instances."""
        data = rng.random((200, 2))
        points = PointSet(data)
        k = 3
        result = kcenter_streaming(ArrayStream(data), k)
        actual = clustering_radius(points, result.centers)
        # Optimal radius via greedy lower bound r_greedy / 2 <= r*.
        greedy = kcenter_greedy(points, k)
        optimal_lower = greedy.radius / 2.0
        assert actual <= 8.0 * max(optimal_lower, 1e-12) + 1e-9

    def test_short_stream(self):
        result = kcenter_streaming(ArrayStream(np.asarray([[0.0], [5.0]])), 2)
        assert result.k == 2
        assert result.radius == pytest.approx(0.0)

    def test_streaming_vs_greedy_quality(self, rng):
        """Streaming is allowed to be worse, but not unboundedly so."""
        data = rng.random((400, 3))
        points = PointSet(data)
        greedy = kcenter_greedy(points, 4)
        streaming = kcenter_streaming(ArrayStream(data), 4)
        actual = clustering_radius(points, streaming.centers)
        assert actual <= 8.0 * greedy.radius + 1e-9

    @pytest.mark.parametrize("batch_size", [1, 7, 64, 1024])
    def test_batched_matches_pointwise(self, rng, batch_size):
        """Batched ingestion is exactly the point-wise algorithm."""
        data = rng.random((500, 3)) * 5.0
        pointwise = kcenter_streaming(ArrayStream(data), 6, batch_size=None)
        batched = kcenter_streaming(ArrayStream(data), 6,
                                    batch_size=batch_size)
        assert np.array_equal(pointwise.centers.points, batched.centers.points)
        assert batched.radius == pointwise.radius
