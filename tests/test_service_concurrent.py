"""Tests for the concurrent, memory-budgeted query-service path.

Covers the three production axes of the service:

* thread safety — lock-striped result cache with atomic stats, lazy
  build under contention, ``query_concurrent`` vs ``query_batch``
  equivalence;
* single-flight matrices — per-rung computation happens exactly once no
  matter how many threads race on the same rung;
* memory budgets — rung matrices live under ``REPRO_MATRIX_BUDGET_MB``
  with LRU eviction, recompute-on-demand, and tracemalloc-verified
  bounded residency, while answers stay identical to the unbudgeted
  service.
"""

from __future__ import annotations

import gc
import threading
import time
import tracemalloc

import numpy as np
import pytest

from repro.datasets.synthetic import sphere_shell
from repro.exceptions import ValidationError
from repro.metricspace.points import PointSet
from repro.service import (
    DiversityService,
    MatrixCache,
    Query,
    StripedLRUCache,
    build_coreset_index,
    make_workload,
    matrix_budget_from_env,
    measure_concurrent_throughput,
)


@pytest.fixture(scope="module")
def dataset():
    return sphere_shell(2500, 16, dim=3, seed=5)


@pytest.fixture(scope="module")
def index(dataset):
    return build_coreset_index(dataset, k_max=16, k_min=4, parallelism=4,
                               seed=0)


# -- striped LRU --------------------------------------------------------------

class TestStripedLRUCache:
    def test_basic_get_put_and_aggregate_stats(self):
        cache = StripedLRUCache(capacity=64, stripes=8)
        assert cache.stripes == 8
        for i in range(20):
            cache.put(("key", i), i)
        assert len(cache) == 20
        assert all(cache.get(("key", i)) == i for i in range(20))
        assert cache.get("missing") is None
        stats = cache.stats
        assert stats.hits == 20 and stats.misses == 1
        assert stats.lookups == 21
        assert ("key", 3) in cache and "missing" not in cache

    def test_stripes_clamped_to_capacity(self):
        cache = StripedLRUCache(capacity=2, stripes=16)
        assert cache.stripes == 2
        cache.put("a", 1)
        assert cache.get("a") == 1

    def test_clear_keeps_stats(self):
        cache = StripedLRUCache(capacity=8, stripes=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_concurrent_hammering_never_loses_counts(self):
        cache = StripedLRUCache(capacity=256, stripes=8)
        threads, per_thread = 8, 200

        def worker(seed: int) -> None:
            for i in range(per_thread):
                key = ("k", (seed * per_thread + i) % 64)
                if cache.get(key) is None:
                    cache.put(key, i)

        pool = [threading.Thread(target=worker, args=(t,))
                for t in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        # Every get counted exactly one hit or miss — no lost updates.
        assert cache.stats.lookups == threads * per_thread


# -- budgeted single-flight matrix cache --------------------------------------

def _matrix(mb: float) -> np.ndarray:
    side = int((mb * 2**20 / 8) ** 0.5)
    return np.ones((side, side))


class TestMatrixCache:
    def test_computes_once_and_hits_after(self):
        cache = MatrixCache(budget_bytes=0)
        calls = []
        first = cache.get_or_compute("a", lambda: calls.append(1) or _matrix(0.1))
        again = cache.get_or_compute("a", lambda: calls.append(1) or _matrix(0.1))
        assert again is first and len(calls) == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.computes == 1 and cache.stats.recomputes == 0

    def test_lru_eviction_under_budget(self):
        budget = int(2.5 * 2**20)
        cache = MatrixCache(budget_bytes=budget)
        for key in ("a", "b", "c"):
            cache.get_or_compute(key, lambda: _matrix(1.0))
        assert cache.nbytes <= budget
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # "a" was evicted (LRU): fetching it again recomputes.
        cache.get_or_compute("a", lambda: _matrix(1.0))
        assert cache.stats.recomputes == 1

    def test_oversized_matrix_served_but_never_resident(self):
        cache = MatrixCache(budget_bytes=2**20)
        result = cache.get_or_compute("big", lambda: _matrix(4.0))
        assert result.shape[0] > 0
        assert len(cache) == 0 and cache.nbytes == 0
        # While a caller still holds the array it is shared weakly —
        # no recompute, and still nothing resident.
        again = cache.get_or_compute("big", lambda: _matrix(4.0))
        assert again is result
        assert cache.stats.computes == 1 and cache.nbytes == 0
        # Once every holder drops it, a new request recomputes — and the
        # recompute counter (the too-low-budget signal) registers it.
        del result, again
        gc.collect()
        cache.get_or_compute("big", lambda: _matrix(4.0))
        assert cache.stats.computes == 2
        assert cache.stats.recomputes == 1

    def test_oversized_matrix_has_no_recompute_convoy(self):
        # Concurrent same-key requesters of an over-budget matrix must
        # share the first compute (weakly), not serialize N recomputes
        # behind the key lock.
        cache = MatrixCache(budget_bytes=2**20)
        barrier = threading.Barrier(4)
        results = []

        def compute():
            time.sleep(0.05)
            return _matrix(4.0)

        def worker():
            barrier.wait()
            results.append(cache.get_or_compute("big", compute))

        pool = [threading.Thread(target=worker) for _ in range(4)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert cache.stats.computes == 1
        assert all(result is results[0] for result in results)
        assert cache.nbytes == 0  # still not resident

    def test_budget_read_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_MATRIX_BUDGET_MB", "7")
        assert matrix_budget_from_env() == 7 * 2**20
        assert MatrixCache().budget_bytes == 7 * 2**20
        monkeypatch.setenv("REPRO_MATRIX_BUDGET_MB", "not-a-number")
        assert matrix_budget_from_env() is None
        monkeypatch.setenv("REPRO_MATRIX_BUDGET_MB", "-3")
        assert matrix_budget_from_env() is None
        monkeypatch.delenv("REPRO_MATRIX_BUDGET_MB")
        assert MatrixCache().budget_bytes is None
        # Explicit zero forces unbudgeted even with the env set.
        monkeypatch.setenv("REPRO_MATRIX_BUDGET_MB", "7")
        assert MatrixCache(budget_bytes=0).budget_bytes is None

    def test_single_flight_under_contention(self):
        cache = MatrixCache(budget_bytes=0)
        computes = []
        barrier = threading.Barrier(8)
        results = []

        def compute():
            computes.append(threading.get_ident())
            time.sleep(0.05)  # widen the race window
            return _matrix(0.2)

        def worker():
            barrier.wait()
            results.append(cache.get_or_compute("rung", compute))

        pool = [threading.Thread(target=worker) for _ in range(8)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert len(computes) == 1, "matrix must be computed exactly once"
        assert all(result is results[0] for result in results)
        assert cache.stats.computes == 1

    def test_clear_supersedes_in_flight_computes(self):
        # A clear() during a compute (the refresh path) must let the
        # compute's caller have its matrix without parking a dead-keyed
        # array in the fresh cache.
        cache = MatrixCache(budget_bytes=0)
        started, release = threading.Event(), threading.Event()
        result = {}

        def compute():
            started.set()
            release.wait(timeout=5)
            return _matrix(0.2)

        thread = threading.Thread(
            target=lambda: result.setdefault(
                "matrix", cache.get_or_compute("rung", compute)))
        thread.start()
        assert started.wait(timeout=5)
        cache.clear()  # interleaved refresh
        release.set()
        thread.join()
        assert result["matrix"].shape[0] > 0  # caller got its matrix...
        assert len(cache) == 0 and cache.nbytes == 0  # ...nothing retained
        # The next generation computes fresh and caches normally.
        cache.get_or_compute("rung", lambda: _matrix(0.2))
        assert len(cache) == 1

    def test_tracemalloc_resident_memory_stays_under_budget(self):
        # 10 x 1 MiB matrices through a 3 MiB budget: the cache may only
        # ever hold 3 of them, and traced peak memory must reflect that —
        # far under the 10 MiB an unbudgeted sweep retains.
        budget = 3 * 2**20
        matrix_mb, keys = 1.0, list(range(10))
        gc.collect()
        tracemalloc.start()
        try:
            cache = MatrixCache(budget_bytes=budget)
            baseline = tracemalloc.get_traced_memory()[0]
            tracemalloc.reset_peak()
            for key in keys:
                cache.get_or_compute(key, lambda: _matrix(matrix_mb))
                assert cache.nbytes <= budget
            peak = tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()
        footprint = len(keys) * matrix_mb * 2**20
        # Peak = resident cache + the one in-flight matrix + small slack.
        assert peak - baseline <= budget + 2 * matrix_mb * 2**20
        assert peak - baseline < footprint


# -- concurrent service -------------------------------------------------------

class TestQueryConcurrent:
    def test_matches_query_batch_in_order(self, index):
        workload = make_workload(16, 24, seed=3)
        serial = DiversityService(index).query_batch(workload)
        concurrent = DiversityService(index).query_concurrent(workload,
                                                              max_workers=4)
        assert [(r.objective, r.k) for r in concurrent] == \
            [(q.objective, q.k) for q in workload]
        for ours, theirs in zip(concurrent, serial):
            assert ours.value == theirs.value
            assert ours.rung == theirs.rung
            assert np.array_equal(ours.indices, theirs.indices)

    def test_empty_workload(self, index):
        assert DiversityService(index).query_concurrent([]) == []

    def test_rejects_bad_worker_count(self, index):
        with pytest.raises(ValidationError):
            DiversityService(index).query_concurrent(
                [Query("remote-edge", 4)], max_workers=0)

    def test_build_calls_frozen_and_stats_exact_under_stress(self, index):
        # N threads x M mixed-rung queries: every query counts exactly one
        # cache hit or miss, and nothing ever rebuilds a core-set.
        service = DiversityService(index, cache_size=512)
        workload = make_workload(16, 30, seed=1)
        threads, rounds = 8, 4
        errors: list[Exception] = []

        def worker(seed: int) -> None:
            try:
                for round_index in range(rounds):
                    rotation = seed + round_index
                    service.query_batch(workload[rotation % len(workload):]
                                        + workload[:rotation % len(workload)])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        pool = [threading.Thread(target=worker, args=(t,))
                for t in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert not errors
        total = threads * rounds * len(workload)
        stats = service.stats()
        assert stats["counters"]["queries_answered"] == total
        assert stats["caches"]["results"]["hits"] + stats["caches"]["results"]["misses"] == total
        assert stats["counters"]["build_calls"] == 0

    def test_lazy_build_happens_once_under_contention(self, dataset):
        service = DiversityService(points=dataset, k_max=8, k_min=8, seed=0)
        barrier = threading.Barrier(6)
        results = []

        def worker():
            barrier.wait()
            results.append(service.query("remote-edge", 4))

        pool = [threading.Thread(target=worker) for _ in range(6)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert service.build_calls == service.index.build_calls > 0
        assert len({result.value for result in results}) == 1

    def test_rung_matrix_computed_exactly_once_under_contention(self, index,
                                                                monkeypatch):
        pairwise_calls: list[tuple] = []
        original = PointSet.pairwise

        def counting_pairwise(self):
            pairwise_calls.append(self.points.shape)
            time.sleep(0.02)  # widen the race window
            return original(self)

        monkeypatch.setattr(PointSet, "pairwise", counting_pairwise)
        service = DiversityService(index)
        # Distinct k on one rung: no result-cache dedup, shared matrix.
        queries = [Query("remote-edge", k) for k in range(2, 10)]
        rungs = {index.route(q.objective, q.k).key for q in queries}
        assert len(rungs) >= 2  # spans several gmm rungs
        service.query_concurrent(queries, max_workers=8)
        assert len(pairwise_calls) == len(rungs)
        assert service.stats()["matrices"]["local"]["computes"] == len(rungs)

    def test_harness_contract(self, dataset):
        # matrix_budget_mb=0 pins the run to unbudgeted so an ambient
        # REPRO_MATRIX_BUDGET_MB cannot turn single-flight computes into
        # budget-driven recomputes under the exactly-once assertion.
        report = measure_concurrent_throughput(
            dataset, 8, num_queries=10, worker_counts=(1, 2), k_min=4,
            seed=0, matrix_budget_mb=0)
        payload = report.as_dict()
        assert payload["build_calls_during_queries"] == 0
        assert payload["matrix_computes"] == payload["distinct_rungs"]
        assert set(payload["workers"]) == {"1", "2"}
        assert all(block["qps"] > 0 for block in payload["workers"].values())


# -- budgeted service ---------------------------------------------------------

class TestBudgetedService:
    def test_budgeted_answers_identical_and_resident_bounded(self, index):
        footprint = sum(8 * len(r.coreset) ** 2 for r in index.all_rungs())
        largest = max(8 * len(r.coreset) ** 2 for r in index.all_rungs())
        budget_mb = max(1, int(largest / 2**20) + 1)
        budget = budget_mb * 2**20
        assert budget < footprint, "budget must be below the ladder footprint"

        unbudgeted = DiversityService(index, matrix_budget_mb=0)
        budgeted = DiversityService(index, matrix_budget_mb=budget_mb)
        # Two passes with different k per rung, small rungs first, so the
        # second pass re-touches evicted matrices (recompute path).
        workload = [("remote-edge", 2), ("remote-clique", 2),
                    ("remote-edge", 6), ("remote-clique", 6),
                    ("remote-edge", 12), ("remote-clique", 12),
                    ("remote-edge", 3), ("remote-clique", 3),
                    ("remote-edge", 7), ("remote-clique", 7)]
        for objective, k in workload:
            expected = unbudgeted.query(objective, k)
            got = budgeted.query(objective, k)
            assert got.value == expected.value
            assert np.array_equal(got.indices, expected.indices)
            assert budgeted.stats()["matrices"]["local"]["resident_bytes"] <= budget
        stats = budgeted.stats()["matrices"]["local"]
        assert stats["budget_bytes"] == budget
        assert stats["evictions"] > 0 or stats["recomputes"] > 0
        unbudgeted_bytes = unbudgeted.stats()["matrices"]["local"]["resident_bytes"]
        assert unbudgeted_bytes > budget  # the budget really binds

    def test_tracemalloc_peak_below_unbudgeted(self, index):
        # The warm sweep's traced peak under a binding budget must come in
        # under the unbudgeted sweep's, by at least the retained-matrix
        # difference the budget enforces.
        workload = [("remote-edge", 2), ("remote-clique", 2),
                    ("remote-edge", 6), ("remote-clique", 6),
                    ("remote-edge", 12), ("remote-clique", 12)]
        largest = max(8 * len(r.coreset) ** 2 for r in index.all_rungs())
        budget_mb = max(1, int(largest / 2**20) + 1)

        def sweep_peak(budget: int) -> tuple[int, int]:
            gc.collect()
            tracemalloc.start()
            try:
                service = DiversityService(index, matrix_budget_mb=budget)
                baseline = tracemalloc.get_traced_memory()[0]
                tracemalloc.reset_peak()
                for objective, k in workload:
                    service.query(objective, k)
                peak = tracemalloc.get_traced_memory()[1]
                resident = service.stats()["matrices"]["local"]["resident_bytes"]
            finally:
                tracemalloc.stop()
            return peak - baseline, resident

        unbudgeted_peak, unbudgeted_resident = sweep_peak(0)
        budgeted_peak, budgeted_resident = sweep_peak(budget_mb)
        assert budgeted_resident <= budget_mb * 2**20 < unbudgeted_resident
        assert budgeted_peak < unbudgeted_peak
