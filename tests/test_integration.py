"""End-to-end integration tests mirroring the paper's claims.

Each test here exercises a full pipeline (data generation -> core-set ->
sequential solve) and checks the *relationships* the paper establishes:
approximation quality versus the reference, the effect of k', ordering
between MR and streaming, and consistency across the six objectives.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import sphere_shell
from repro.datasets.text import zipf_bag_of_words
from repro.diversity.objectives import list_objectives
from repro.experiments.harness import approximation_ratio
from repro.experiments.reference import reference_value
from repro.mapreduce.algorithm import MRDiversityMaximizer
from repro.streaming.algorithm import (
    StreamingDiversityMaximizer,
    TwoPassStreamingDiversityMaximizer,
)
from repro.streaming.stream import ArrayStream


@pytest.fixture(scope="module")
def planted():
    return sphere_shell(3000, 16, dim=3, seed=101)


@pytest.fixture(scope="module")
def planted_reference(planted):
    return {
        objective: reference_value(planted, 8, objective)
        for objective in list_objectives()
    }


class TestEndToEndQuality:
    @pytest.mark.parametrize("objective", list_objectives())
    def test_mr_ratio_within_guarantee(self, planted, planted_reference,
                                       objective):
        algo = MRDiversityMaximizer(k=8, k_prime=32, objective=objective,
                                    parallelism=4, seed=0)
        result = algo.run(planted)
        ratio = approximation_ratio(planted_reference[objective], result.value)
        # The end-to-end guarantee is alpha + eps <= 5; in practice on this
        # data the ratios are near 1 (Figure 4); we assert a safe envelope.
        assert ratio <= 2.0, f"{objective}: ratio {ratio}"

    @pytest.mark.parametrize("objective", list_objectives())
    def test_streaming_ratio_within_guarantee(self, planted,
                                              planted_reference, objective):
        algo = StreamingDiversityMaximizer(k=8, k_prime=32,
                                           objective=objective)
        result = algo.run(ArrayStream(planted.points))
        ratio = approximation_ratio(planted_reference[objective], result.value)
        assert ratio <= 3.0, f"{objective}: ratio {ratio}"


class TestKPrimeEffect:
    def test_streaming_ratio_improves_with_k_prime(self, planted,
                                                   planted_reference):
        """Figure 1/2's trend: larger k' -> (weakly) better ratio, checked
        over averaged trials to smooth arrival-order noise."""
        reference = planted_reference["remote-edge"]
        ratios = []
        for k_prime in (8, 64):
            values = []
            for seed in range(3):
                rng = np.random.default_rng(seed)
                order = rng.permutation(len(planted))
                algo = StreamingDiversityMaximizer(k=8, k_prime=k_prime,
                                                   objective="remote-edge")
                result = algo.run(ArrayStream(planted.points[order]))
                values.append(result.value)
            ratios.append(approximation_ratio(reference, float(np.mean(values))))
        assert ratios[1] <= ratios[0] + 0.05

    def test_mr_ratio_improves_with_k_prime(self, planted, planted_reference):
        reference = planted_reference["remote-edge"]
        ratios = []
        for k_prime in (8, 64):
            algo = MRDiversityMaximizer(k=8, k_prime=k_prime,
                                        objective="remote-edge",
                                        parallelism=4, seed=1)
            ratios.append(approximation_ratio(reference,
                                              algo.run(planted).value))
        assert ratios[1] <= ratios[0] + 1e-9


class TestModelComparisons:
    def test_mr_beats_streaming_on_average(self, planted, planted_reference):
        """Section 7.2: MR ratios are generally better than streaming's
        (GMM is a 2-approx k-center builder, SMM only an 8-approx)."""
        reference = planted_reference["remote-edge"]
        mr_values, stream_values = [], []
        for seed in range(3):
            mr = MRDiversityMaximizer(k=8, k_prime=16, objective="remote-edge",
                                      parallelism=4, seed=seed)
            mr_values.append(mr.run(planted).value)
            order = np.random.default_rng(seed).permutation(len(planted))
            st = StreamingDiversityMaximizer(k=8, k_prime=16,
                                             objective="remote-edge")
            stream_values.append(st.run(ArrayStream(planted.points[order])).value)
        assert np.mean(mr_values) >= np.mean(stream_values) - 1e-9

    def test_two_pass_saves_memory_at_similar_quality(self, planted):
        one = StreamingDiversityMaximizer(k=8, k_prime=16,
                                          objective="remote-clique")
        two = TwoPassStreamingDiversityMaximizer(k=8, k_prime=16,
                                                 objective="remote-clique")
        r1 = one.run(ArrayStream(planted.points))
        r2 = two.run(ArrayStream(planted.points))
        assert r2.peak_memory_points < r1.peak_memory_points
        assert r2.value >= 0.5 * r1.value


class TestCosineWorkload:
    def test_pipeline_on_bag_of_words(self):
        """The musiXmatch-style workload end to end under cosine distance."""
        docs = zipf_bag_of_words(400, vocab_size=300, topics=12, seed=7)
        reference = reference_value(docs, 8, "remote-edge")
        algo = StreamingDiversityMaximizer(k=8, k_prime=32,
                                           objective="remote-edge",
                                           metric="cosine")
        result = algo.run(ArrayStream(docs.points))
        assert approximation_ratio(reference, result.value) <= 2.5

    def test_mr_on_bag_of_words(self):
        docs = zipf_bag_of_words(400, vocab_size=300, topics=12, seed=7)
        reference = reference_value(docs, 8, "remote-edge")
        algo = MRDiversityMaximizer(k=8, k_prime=32, objective="remote-edge",
                                    parallelism=4, metric="cosine", seed=0)
        result = algo.run(docs)
        assert approximation_ratio(reference, result.value) <= 1.5


class TestAdversarialPartitioning:
    def test_adversarial_worsens_ratio_mildly(self, planted,
                                              planted_reference):
        """Section 7.2: adversarial partitioning costs up to ~10% ratio.
        We assert it never helps and stays within a generous envelope."""
        reference = planted_reference["remote-edge"]
        random_algo = MRDiversityMaximizer(k=8, k_prime=32,
                                           objective="remote-edge",
                                           parallelism=4, seed=2,
                                           partition_strategy="random")
        adversarial_algo = MRDiversityMaximizer(k=8, k_prime=32,
                                                objective="remote-edge",
                                                parallelism=4, seed=2,
                                                partition_strategy="adversarial")
        random_ratio = approximation_ratio(reference,
                                           random_algo.run(planted).value)
        adversarial_ratio = approximation_ratio(
            reference, adversarial_algo.run(planted).value)
        assert adversarial_ratio <= random_ratio * 1.5 + 0.1
