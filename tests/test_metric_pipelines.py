"""End-to-end pipelines under every supported metric.

The paper stresses that the approach applies beyond Euclidean spaces (the
cosine and Jaccard distances of its applications); these tests run the
full streaming and MapReduce stacks under each metric and check the
guarantees hold — exercising the metric plumbing (PointSet propagation,
sketch kernels, solver dispatch) for all registry entries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.harness import approximation_ratio
from repro.experiments.reference import reference_value
from repro.mapreduce.algorithm import MRDiversityMaximizer
from repro.metricspace.points import PointSet
from repro.streaming.algorithm import StreamingDiversityMaximizer
from repro.streaming.stream import ArrayStream


def _dataset_for(metric: str, rng) -> PointSet:
    n = 800
    if metric == "cosine":
        data = np.abs(rng.normal(size=(n, 8))) + 0.05
    elif metric == "jaccard":
        data = (rng.random((n, 12)) < 0.3).astype(float)
        data[data.sum(axis=1) == 0, 0] = 1.0  # no empty sets
    elif metric == "hamming":
        data = (rng.random((n, 16)) < 0.5).astype(float)
    else:
        data = rng.random((n, 4)) * 10.0
    return PointSet(data, metric=metric)


METRICS = ["euclidean", "manhattan", "chebyshev", "cosine", "jaccard",
           "hamming"]


@pytest.mark.parametrize("metric", METRICS)
class TestMetricPipelines:
    def test_streaming_pipeline(self, metric, rng):
        points = _dataset_for(metric, rng)
        algo = StreamingDiversityMaximizer(k=4, k_prime=16,
                                           objective="remote-edge",
                                           metric=points.metric)
        result = algo.run(ArrayStream(points.points))
        assert result.k == 4
        assert result.value >= 0.0
        assert result.solution.metric.name == metric

    def test_mapreduce_pipeline(self, metric, rng):
        points = _dataset_for(metric, rng)
        algo = MRDiversityMaximizer(k=4, k_prime=16,
                                    objective="remote-clique",
                                    parallelism=4, metric=points.metric,
                                    seed=0)
        result = algo.run(points)
        assert result.k == 4
        assert result.value > 0.0

    def test_ratio_against_reference(self, metric, rng):
        points = _dataset_for(metric, rng)
        reference = reference_value(points, 4, "remote-edge")
        algo = MRDiversityMaximizer(k=4, k_prime=32, objective="remote-edge",
                                    parallelism=4, metric=points.metric,
                                    seed=0)
        result = algo.run(points)
        ratio = approximation_ratio(reference, result.value)
        # Discrete metrics (hamming, binary jaccard) have heavy ties;
        # allow the theoretical 2x envelope everywhere.
        assert ratio <= 2.0 + 1e-9, f"{metric}: ratio {ratio}"


class TestMetricPropagation:
    def test_coreset_inherits_metric(self, rng):
        points = _dataset_for("cosine", rng)
        from repro.coresets.smm import SMM
        sketch = SMM(k=4, k_prime=8, metric=points.metric)
        sketch.process_batch(points.points[:200])
        assert sketch.finalize().metric.name == "cosine"

    def test_generalized_coreset_inherits_metric(self, rng):
        points = _dataset_for("jaccard", rng)
        from repro.coresets.gmm_gen import gmm_gen
        core = gmm_gen(points, k=3, k_prime=6)
        assert core.metric.name == "jaccard"
        assert core.as_point_set().metric.name == "jaccard"
