"""Deterministic scheduler tests for :mod:`repro.service.qos`.

Scheduling bugs are timing bugs, so every test here runs sleep-free on
an injected fake clock:

* WDRR fairness — two backlogged tenants at weights 2:1 split dispatch
  within ±10% over 1k synthetic requests (exactly 2:1, in fact);
* starvation-freedom — a flooded tenant pushes an under-quota tenant
  back by at most one round (≤ one daemon batch window);
* token-bucket refill edge cases — burst at start, drain to empty,
  fractional refill, and the zero-rate kill switch;
* admission bookkeeping — per-tenant queue bounds, rejection reasons,
  tenant-specific retry hints, stats truthfulness;
* hypothesis properties — for random weight vectors and arrival
  orders, dispatch is FIFO within every tenant and
  ``dispatched == admitted`` (no drops, no dupes).
"""

from __future__ import annotations

from collections import Counter, defaultdict

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.service.qos import (
    REJECT_QUEUE_FULL,
    REJECT_RATE_LIMITED,
    QosRejection,
    TenantQuota,
    TokenBucket,
    WeightedDeficitRoundRobin,
)

SETTINGS = settings(max_examples=15, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


class FakeClock:
    """A manually advanced monotonic clock (seconds)."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_scheduler(quotas=None, **kwargs):
    clock = kwargs.pop("clock", FakeClock())
    scheduler = WeightedDeficitRoundRobin(
        quotas, clock=clock,
        default_max_queue=kwargs.pop("default_max_queue", 10_000), **kwargs)
    return scheduler, clock


def drain(scheduler, limit=None):
    items = []
    while limit is None or len(items) < limit:
        item = scheduler.take()
        if item is None:
            break
        items.append(item)
    return items


# -- quota validation ---------------------------------------------------------


def test_quota_validation():
    with pytest.raises(ValidationError, match="weight"):
        TenantQuota(weight=0)
    with pytest.raises(ValidationError, match="weight"):
        TenantQuota(weight=-2.0)
    with pytest.raises(ValidationError):
        TenantQuota(max_queue=0)
    with pytest.raises(ValidationError, match="rate_limit_qps"):
        TenantQuota(rate_limit_qps=-1)
    TenantQuota(rate_limit_qps=0)  # the kill switch is a valid quota


def test_quota_manifest_round_trip():
    assert TenantQuota().to_manifest() == {}
    quota = TenantQuota(weight=2.5, max_queue=4, rate_limit_qps=0.5)
    assert TenantQuota.from_manifest(quota.to_manifest()) == quota
    assert TenantQuota.from_manifest(None) == TenantQuota()
    with pytest.raises(ValidationError, match="unknown"):
        TenantQuota.from_manifest({"weigth": 2})
    with pytest.raises(ValidationError, match="object"):
        TenantQuota.from_manifest([1, 2])


# -- WDRR fairness ------------------------------------------------------------


def test_wdrr_two_to_one_shares_over_1k_requests():
    """Weights 2:1, both saturated: dispatch shares within ±10%."""
    scheduler, _ = make_scheduler({"hot": TenantQuota(weight=2.0),
                                   "cold": TenantQuota(weight=1.0)})
    for i in range(1000):
        scheduler.admit("hot", ("hot", i))
        scheduler.admit("cold", ("cold", i))
    window = drain(scheduler, limit=900)
    shares = Counter(tenant for tenant, _ in window)
    assert shares["hot"] + shares["cold"] == 900
    assert shares["hot"] / 900 == pytest.approx(2 / 3, abs=0.10 * 2 / 3)
    assert shares["cold"] / 900 == pytest.approx(1 / 3, abs=0.10 / 3)
    # Within each tenant, strictly FIFO.
    for tenant in ("hot", "cold"):
        sequence = [i for name, i in window if name == tenant]
        assert sequence == sorted(sequence)


def test_wdrr_fractional_weights():
    scheduler, _ = make_scheduler({"a": TenantQuota(weight=1.5),
                                   "b": TenantQuota(weight=0.5)})
    for i in range(600):
        scheduler.admit("a", ("a", i))
        scheduler.admit("b", ("b", i))
    shares = Counter(t for t, _ in drain(scheduler, limit=400))
    assert shares["a"] / 400 == pytest.approx(0.75, abs=0.05)


def test_wdrr_flooded_tenant_cannot_starve_cold_tenant():
    """A cold request lands within one round of a hot flood.

    The daemon's collector redeems one ``take()`` per admitted request
    up to ``max_batch`` per batch window; bounding the cold request's
    dispatch *position* therefore bounds its delay to at most one
    window whenever the bound fits in a batch.
    """
    scheduler, _ = make_scheduler({"hot": TenantQuota(weight=4.0),
                                   "cold": TenantQuota(weight=1.0)})
    for i in range(500):
        scheduler.admit("hot", ("hot", i))
    # Pre-spin the round so the hot tenant sits mid-burst with banked
    # deficit — the worst case for a newly active tenant.
    burned = drain(scheduler, limit=3)
    assert all(tenant == "hot" for tenant, _ in burned)
    scheduler.admit("cold", ("cold", 0))
    upcoming = drain(scheduler, limit=10)
    # Worst case: the hot tenant finishes its banked burst (< 2 rounds
    # of weight-4 deficit) before the round reaches the cold tenant.
    position = upcoming.index(("cold", 0))
    assert position <= 2 * 4  # 2 rounds * weight 4
    # And from a standing start the cold tenant is served immediately
    # after at most one hot burst per round thereafter.
    shares = Counter(t for t, _ in upcoming)
    assert shares["cold"] == 1


def test_wdrr_idle_tenant_banks_no_priority():
    """A tenant that drains to empty forfeits its deficit."""
    scheduler, _ = make_scheduler({"a": TenantQuota(weight=8.0),
                                   "b": TenantQuota(weight=1.0)})
    scheduler.admit("a", ("a", 0))
    assert drain(scheduler) == [("a", 0)]
    # "a" went idle; its banked weight-8 deficit must not let it jump
    # a later backlog ahead of schedule.
    for i in range(10):
        scheduler.admit("b", ("b", i))
    scheduler.admit("a", ("a", 1))
    first_b = drain(scheduler, limit=1)
    assert first_b == [("b", 0)]  # FIFO round order, no banked jump


def test_wdrr_single_tenant_degenerates_to_fifo():
    scheduler, _ = make_scheduler({"only": TenantQuota(weight=0.25)})
    for i in range(50):
        scheduler.admit("only", i)
    assert drain(scheduler) == list(range(50))
    assert scheduler.take() is None
    assert len(scheduler) == 0


def test_wdrr_lazy_tenant_uses_default_quota():
    scheduler, _ = make_scheduler(default_max_queue=2)
    scheduler.admit("surprise", 1)
    scheduler.admit("surprise", 2)
    with pytest.raises(QosRejection) as excinfo:
        scheduler.admit("surprise", 3)
    assert excinfo.value.reason == REJECT_QUEUE_FULL
    assert scheduler.stats()["per_tenant"]["surprise"]["max_queue"] == 2


# -- admission bounds and retry hints ----------------------------------------


def test_per_tenant_queue_bounds_are_independent():
    scheduler, _ = make_scheduler(
        {"small": TenantQuota(max_queue=2), "big": TenantQuota(max_queue=8)})
    for i in range(2):
        scheduler.admit("small", i)
    for i in range(8):
        scheduler.admit("big", i)
    with pytest.raises(QosRejection):
        scheduler.admit("small", 99)
    stats = scheduler.stats()
    assert stats["per_tenant"]["small"]["rejected"] == 1
    assert stats["per_tenant"]["big"]["rejected"] == 0
    assert stats["queued"] == 10


def test_queue_full_retry_hint_scales_with_backlog_over_weight():
    scheduler, _ = make_scheduler(
        {"heavy": TenantQuota(weight=4.0, max_queue=8),
         "light": TenantQuota(weight=1.0, max_queue=8)},
        base_retry_ms=50.0)
    for i in range(8):
        scheduler.admit("heavy", i)
        scheduler.admit("light", i)
    with pytest.raises(QosRejection) as heavy:
        scheduler.admit("heavy", 99)
    with pytest.raises(QosRejection) as light:
        scheduler.admit("light", 99)
    assert heavy.value.retry_after_ms == pytest.approx(50.0 * 8 / 4)
    assert light.value.retry_after_ms == pytest.approx(50.0 * 8 / 1)
    assert light.value.retry_after_ms > heavy.value.retry_after_ms


def test_rate_limited_retry_hint_is_refill_time():
    clock = FakeClock()
    scheduler, _ = make_scheduler(
        {"limited": TenantQuota(rate_limit_qps=2.0)}, clock=clock)
    scheduler.admit("limited", 1)
    scheduler.admit("limited", 2)  # burst capacity max(1, 2) = 2
    with pytest.raises(QosRejection) as excinfo:
        scheduler.admit("limited", 3)
    assert excinfo.value.reason == REJECT_RATE_LIMITED
    assert excinfo.value.retry_after_ms == pytest.approx(500.0)
    clock.advance(0.5)  # one token refills
    scheduler.admit("limited", 3)
    assert scheduler.stats()["per_tenant"]["limited"]["rejected"] == 1
    assert scheduler.stats()["per_tenant"][
        "limited"]["rejected_rate_limited"] == 1


# -- token bucket -------------------------------------------------------------


def test_token_bucket_burst_then_drain():
    clock = FakeClock()
    bucket = TokenBucket(5.0, clock=clock)
    assert bucket.capacity == 5.0
    taken = sum(bucket.try_take() for _ in range(10))
    assert taken == 5  # full burst, then dry
    assert bucket.retry_after_s() == pytest.approx(0.2)


def test_token_bucket_refill_is_linear_and_capped():
    clock = FakeClock()
    bucket = TokenBucket(10.0, capacity=3.0, clock=clock)
    for _ in range(3):
        assert bucket.try_take()
    assert not bucket.try_take()
    clock.advance(0.05)  # half a token: still dry
    assert not bucket.try_take()
    clock.advance(0.05)
    assert bucket.try_take()
    clock.advance(1000.0)  # refill caps at capacity, no banking
    assert bucket.tokens == pytest.approx(3.0)


def test_token_bucket_sub_1qps_rate_still_accumulates_a_token():
    clock = FakeClock()
    bucket = TokenBucket(0.5, clock=clock)  # capacity floors at 1.0
    assert bucket.try_take()
    assert not bucket.try_take()
    clock.advance(2.0)
    assert bucket.try_take()


def test_token_bucket_zero_rate_is_a_kill_switch():
    clock = FakeClock()
    bucket = TokenBucket(0.0, clock=clock)
    assert not bucket.try_take()
    clock.advance(1e9)
    assert not bucket.try_take()
    assert bucket.retry_after_s() is None  # no finite hint exists
    scheduler, _ = make_scheduler(
        {"dead": TenantQuota(rate_limit_qps=0)}, clock=clock)
    with pytest.raises(QosRejection) as excinfo:
        scheduler.admit("dead", 1)
    assert excinfo.value.retry_after_ms is None


def test_token_bucket_validation():
    with pytest.raises(ValidationError):
        TokenBucket(-1.0)
    with pytest.raises(ValidationError):
        TokenBucket(1.0, capacity=-1.0)


# -- stats --------------------------------------------------------------------


def test_stats_totals_and_latency_block():
    scheduler, _ = make_scheduler({"a": TenantQuota(weight=2.0)})
    for i in range(4):
        scheduler.admit("a", i)
    drain(scheduler, limit=3)
    scheduler.record_latency("a", 0.010)
    scheduler.record_latency("a", 0.030)
    stats = scheduler.stats()
    assert stats["admitted"] == 4
    assert stats["dispatched"] == 3
    assert stats["queued"] == 1
    block = stats["per_tenant"]["a"]
    assert block["queued"] == 1
    assert block["latency"]["count"] == 2
    assert block["latency"]["p50_ms"] == pytest.approx(20.0)
    assert {"p95_ms", "p99_ms", "mean_ms", "max_ms"} <= set(block["latency"])


def test_duplicate_tenant_registration_rejected():
    scheduler, _ = make_scheduler({"a": TenantQuota()})
    with pytest.raises(ValidationError, match="already"):
        scheduler.add_tenant("a")


# -- hypothesis properties ----------------------------------------------------


@st.composite
def schedules(draw):
    """Random weights plus a random arrival order over those tenants."""
    n_tenants = draw(st.integers(1, 5))
    weights = [draw(st.floats(0.1, 8.0, allow_nan=False)) for _ in
               range(n_tenants)]
    arrivals = draw(st.lists(st.integers(0, n_tenants - 1), min_size=1,
                             max_size=120))
    return weights, arrivals


@SETTINGS
@given(schedule=schedules())
def test_wdrr_fifo_within_tenant_for_any_arrival_order(schedule):
    """WDRR never reorders two requests of the same tenant."""
    weights, arrivals = schedule
    quotas = {t: TenantQuota(weight=w) for t, w in enumerate(weights)}
    scheduler, _ = make_scheduler(quotas)
    sequence_in = defaultdict(list)
    for position, tenant in enumerate(arrivals):
        scheduler.admit(tenant, (tenant, position))
        sequence_in[tenant].append(position)
    dispatched = drain(scheduler)
    sequence_out = defaultdict(list)
    for tenant, position in dispatched:
        sequence_out[tenant].append(position)
    for tenant, positions in sequence_out.items():
        assert positions == sequence_in[tenant]


@SETTINGS
@given(schedule=schedules(), interleave=st.integers(1, 7))
def test_wdrr_conserves_requests(schedule, interleave):
    """Total dispatched == total admitted: no drops, no dupes — even
    when takes interleave with admissions mid-backlog."""
    weights, arrivals = schedule
    quotas = {t: TenantQuota(weight=w) for t, w in enumerate(weights)}
    scheduler, _ = make_scheduler(quotas)
    dispatched = []
    for position, tenant in enumerate(arrivals):
        scheduler.admit(tenant, (tenant, position))
        if position % interleave == 0:
            item = scheduler.take()
            if item is not None:
                dispatched.append(item)
    dispatched += drain(scheduler)
    assert len(dispatched) == len(arrivals)
    assert len(set(dispatched)) == len(arrivals)  # no dupes
    stats = scheduler.stats()
    assert stats["admitted"] == len(arrivals)
    assert stats["dispatched"] == len(arrivals)
    assert stats["queued"] == 0 and len(scheduler) == 0
