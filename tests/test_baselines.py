"""Tests for the AFZ, IMMM, and random-subset baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.afz import AFZDiversityMaximizer, afz_local_search_coreset
from repro.baselines.immm import IMMMStreamingMaximizer
from repro.baselines.random_subset import random_subset_solution
from repro.datasets.synthetic import sphere_shell
from repro.exceptions import ValidationError
from repro.experiments.reference import reference_value
from repro.mapreduce.algorithm import MRDiversityMaximizer
from repro.metricspace.points import PointSet
from repro.streaming.stream import ArrayStream


class TestAFZCoreset:
    def test_small_partition_passthrough(self, rng):
        pts = PointSet(rng.random((3, 2)))
        assert afz_local_search_coreset(pts, 5) is pts

    def test_coreset_is_locally_optimal_selection(self, rng):
        pts = PointSet(rng.random((40, 2)))
        core = afz_local_search_coreset(pts, 4)
        assert len(core) == 4


class TestAFZDriver:
    def test_runs_remote_clique(self):
        pts = sphere_shell(400, 4, dim=2, seed=3)
        algo = AFZDiversityMaximizer(k=4, objective="remote-clique",
                                     parallelism=4, seed=0)
        result = algo.run(pts)
        assert result.solution is not None
        assert len(result.solution) == 4
        assert result.coreset_size <= 4 * 4  # l partitions of k points each

    def test_runs_remote_edge(self):
        pts = sphere_shell(400, 4, dim=2, seed=3)
        algo = AFZDiversityMaximizer(k=4, objective="remote-edge",
                                     parallelism=4, seed=0)
        assert algo.run(pts).value > 0.0

    def test_rejects_other_objectives(self):
        with pytest.raises(ValidationError):
            AFZDiversityMaximizer(k=4, objective="remote-tree")

    def test_process_executor_matches_serial(self):
        import numpy as np

        pts = sphere_shell(400, 4, dim=2, seed=3)
        serial = AFZDiversityMaximizer(k=4, objective="remote-clique",
                                       parallelism=4, seed=0)
        with AFZDiversityMaximizer(k=4, objective="remote-clique",
                                   parallelism=4, seed=0,
                                   executor="process") as parallel:
            r_serial = serial.run(pts)
            r_parallel = parallel.run(pts)
        assert np.array_equal(r_parallel.solution.points,
                              r_serial.solution.points)
        assert r_parallel.value == r_serial.value

    def test_engine_reused_across_runs(self):
        pts = sphere_shell(300, 4, dim=2, seed=3)
        algo = AFZDiversityMaximizer(k=4, objective="remote-edge",
                                     parallelism=2, seed=0)
        a, b = algo.run(pts), algo.run(pts)
        # Per-run stats isolated despite one persistent engine.
        assert a.stats.num_rounds == 2 and b.stats.num_rounds == 2

    def test_cppu_is_faster_than_afz(self):
        """Table 4's headline: CPPU orders of magnitude faster, quality
        at least comparable.  At test scale we only require strictly
        faster and within-10% quality."""
        pts = sphere_shell(3000, 4, dim=2, seed=5)
        afz = AFZDiversityMaximizer(k=4, objective="remote-clique",
                                    parallelism=4, seed=0)
        cppu = MRDiversityMaximizer(k=4, k_prime=32, objective="remote-clique",
                                    parallelism=4, seed=0)
        afz_result = afz.run(pts)
        cppu_result = cppu.run(pts)
        assert cppu_result.stats.total_wall_seconds < afz_result.stats.total_wall_seconds
        assert cppu_result.value >= afz_result.value * 0.9


class TestIMMM:
    def test_block_structure(self):
        pts = sphere_shell(900, 4, dim=3, seed=7)
        algo = IMMMStreamingMaximizer(k=4, expected_n=900,
                                      objective="remote-edge")
        result = algo.run(ArrayStream(pts.points))
        # Block size = sqrt(4 * 900) = 60 -> 15 blocks.
        assert algo.block_size == 60
        assert result.blocks == 15
        assert result.coreset_size == 15 * 4

    def test_memory_grows_with_stream_unlike_smm(self):
        """IMMM memory scales like sqrt(kn): the contrast motivating SMM."""
        peaks = []
        for n in (400, 6400):
            pts = sphere_shell(n, 4, dim=3, seed=9)
            algo = IMMMStreamingMaximizer(k=4, expected_n=n,
                                          objective="remote-edge")
            peaks.append(algo.run(ArrayStream(pts.points)).peak_memory_points)
        assert peaks[1] >= 2.5 * peaks[0]  # sqrt(16) = 4x expected

    def test_solution_quality_reasonable(self):
        pts = sphere_shell(1600, 4, dim=3, seed=11)
        algo = IMMMStreamingMaximizer(k=4, expected_n=1600,
                                      objective="remote-edge")
        result = algo.run(ArrayStream(pts.points))
        reference = reference_value(pts, 4, "remote-edge")
        assert reference / result.value <= 3.5  # their guarantee is 3x


class TestRandomSubset:
    def test_returns_k_points(self, medium_points):
        solution, value = random_subset_solution(medium_points, 5,
                                                 "remote-edge", seed=0)
        assert len(solution) == 5
        assert value >= 0.0

    def test_coreset_methods_beat_random_on_planted_data(self):
        pts = sphere_shell(2000, 8, dim=3, seed=13)
        _, random_value = random_subset_solution(pts, 8, "remote-edge", seed=0)
        algo = MRDiversityMaximizer(k=8, k_prime=32, objective="remote-edge",
                                    parallelism=4, seed=0)
        assert algo.run(pts).value > 2.0 * random_value
