"""Tests for exact div_k and the sequential approximation algorithms.

The crucial property checked here is each solver's approximation guarantee
against the exact optimum on small random instances: GMM's factor 2 for
remote-edge, matching's factor 2 for remote-clique, etc.  These are the
``alpha`` values every end-to-end theorem multiplies by ``(1 + eps)``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.diversity.exact import divk_exact, divk_exact_subset
from repro.diversity.objectives import get_objective, list_objectives
from repro.diversity.sequential import solve_on_matrix, solve_sequential
from repro.exceptions import ValidationError
from repro.metricspace.points import PointSet

APPROX_FACTORS = {
    "remote-edge": 2.0,
    "remote-clique": 2.0,
    "remote-star": 2.0,
    "remote-bipartition": 3.0,
    "remote-tree": 4.0,
    "remote-cycle": 3.0,
}


class TestExact:
    def test_line_remote_edge(self, line_points):
        # Points 0,1,2,4,8,16; best 3-subset spread: {0, 8, 16} -> min gap 8.
        value, subset = divk_exact_subset(line_points, 3, "remote-edge")
        assert value == pytest.approx(8.0)
        chosen = sorted(float(line_points.points[i][0]) for i in subset)
        assert chosen == [0.0, 8.0, 16.0]

    def test_line_remote_clique(self, line_points):
        value, _ = divk_exact_subset(line_points, 2, "remote-clique")
        assert value == pytest.approx(16.0)

    def test_k_equals_n(self, small_points):
        value = divk_exact(small_points, len(small_points), "remote-edge")
        objective = get_objective("remote-edge")
        assert value == pytest.approx(objective.value(small_points.pairwise()))

    def test_subset_count_guard(self, rng):
        big = PointSet(rng.random((60, 2)))
        with pytest.raises(ValidationError):
            divk_exact(big, 20, "remote-edge")

    def test_monotone_in_k_for_edge(self, small_points):
        """Remote-edge optimum can only shrink as k grows."""
        values = [divk_exact(small_points, k, "remote-edge") for k in (2, 3, 4)]
        assert values[0] >= values[1] >= values[2]


@pytest.mark.parametrize("objective", list_objectives())
class TestSequentialGuarantees:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_approximation_factor_on_random_instances(self, objective, k, rng):
        alpha = APPROX_FACTORS[objective]
        for trial in range(5):
            pts = PointSet(np.random.default_rng(1000 * k + trial).random((10, 2)))
            optimum = divk_exact(pts, k, objective)
            _, achieved = solve_sequential(pts, k, objective)
            assert achieved >= optimum / alpha - 1e-9, (
                f"{objective}: achieved {achieved} < optimum {optimum} / {alpha}"
            )
            assert achieved <= optimum + 1e-9

    def test_selects_k_distinct_indices(self, objective, small_points):
        indices, _ = solve_sequential(small_points, 5, objective)
        assert len(indices) == 5
        assert len(set(indices.tolist())) == 5

    def test_k_equals_n_selects_everything(self, objective, small_points):
        indices, _ = solve_sequential(small_points, len(small_points), objective)
        assert sorted(indices.tolist()) == list(range(len(small_points)))


class TestSolveOnMatrix:
    def test_rejects_k_too_large(self, rng):
        dist = np.zeros((3, 3))
        with pytest.raises(Exception):
            solve_on_matrix(dist, 4, "remote-edge")

    def test_remote_edge_picks_extremes_on_line(self):
        xs = np.asarray([0.0, 1.0, 2.0, 10.0])
        dist = np.abs(xs[:, None] - xs[None, :])
        indices = solve_on_matrix(dist, 2, "remote-edge")
        assert set(indices.tolist()) == {0, 3}

    def test_clique_picks_farthest_pair(self):
        xs = np.asarray([0.0, 4.0, 9.0])
        dist = np.abs(xs[:, None] - xs[None, :])
        indices = solve_on_matrix(dist, 2, "remote-clique")
        assert set(indices.tolist()) == {0, 2}

    def test_clique_odd_k_adds_good_third(self):
        # Farthest pair is (0,0)-(10,0); the best third by distance sum is
        # the off-axis point, not the near-duplicate of the first endpoint.
        pts = np.asarray([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [10.0, 0.0]])
        dist = np.linalg.norm(pts[:, None] - pts[None, :], axis=2)
        indices = solve_on_matrix(dist, 3, "remote-clique")
        assert set(indices.tolist()) == {0, 2, 3}


@settings(max_examples=25, deadline=None)
@given(points=arrays(np.float64, (8, 2), elements=st.floats(0, 10, allow_nan=False)),
       k=st.integers(2, 4))
def test_gmm_remote_edge_2_approx_property(points, k):
    """Property: GMM never falls below half the remote-edge optimum.

    The tie-breaking jitter must exceed the Gram-trick kernel's
    cancellation noise (~1e-7 at coordinate magnitude 10), otherwise
    duplicates produce zero distances on both sides of the comparison.
    """
    pts = PointSet(points + np.arange(8)[:, None] * 1e-3)
    optimum = divk_exact(pts, k, "remote-edge")
    _, achieved = solve_sequential(pts, k, "remote-edge")
    assert achieved >= optimum / 2.0 - 1e-7
