"""Tests for repro.utils (rng, validation, timing) and the exception types."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.exceptions import (
    InsufficientPointsError,
    MemoryBudgetExceededError,
    ReproError,
    ValidationError,
)
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Stopwatch
from repro.utils.validation import (
    check_in_range,
    check_k_le_n,
    check_points_array,
    check_positive_int,
)


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(7).integers(0, 1000, size=5)
        b = ensure_rng(7).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(42)
        assert isinstance(ensure_rng(seq), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_are_independent_streams(self):
        children = spawn_rngs(0, 2)
        a = children[0].integers(0, 10**9, size=8)
        b = children[1].integers(0, 10**9, size=8)
        assert not np.array_equal(a, b)

    def test_reproducible_from_same_seed(self):
        a = spawn_rngs(3, 3)[1].integers(0, 10**9, size=4)
        b = spawn_rngs(3, 3)[1].integers(0, 10**9, size=4)
        assert np.array_equal(a, b)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_generator_master_seed(self):
        children = spawn_rngs(np.random.default_rng(0), 2)
        assert len(children) == 2


class TestValidation:
    def test_positive_int_accepts(self):
        assert check_positive_int(3, "x") == 3

    def test_positive_int_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive_int(0, "x")

    def test_positive_int_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, "x")

    def test_positive_int_rejects_float(self):
        with pytest.raises(ValidationError):
            check_positive_int(2.5, "x")

    def test_positive_int_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(4), "x") == 4

    def test_in_range_bounds(self):
        assert check_in_range(0.5, "eps", 0.0, 1.0) == 0.5
        with pytest.raises(ValidationError):
            check_in_range(0.0, "eps", 0.0, 1.0)  # exclusive low by default
        assert check_in_range(1.0, "eps", 0.0, 1.0) == 1.0  # inclusive high

    def test_points_array_reshapes_1d(self):
        arr = check_points_array(np.asarray([1.0, 2.0]))
        assert arr.shape == (2, 1)

    def test_points_array_rejects_empty(self):
        with pytest.raises(ValidationError):
            check_points_array(np.empty((0, 3)))

    def test_points_array_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_points_array(np.asarray([[np.nan, 1.0]]))

    def test_points_array_rejects_3d(self):
        with pytest.raises(ValidationError):
            check_points_array(np.zeros((2, 2, 2)))

    def test_k_le_n(self):
        assert check_k_le_n(3, 5) == 3
        with pytest.raises(InsufficientPointsError):
            check_k_le_n(6, 5)


class TestStopwatch:
    def test_lap_accumulates(self):
        watch = Stopwatch()
        with watch.lap("a"):
            time.sleep(0.001)
        with watch.lap("a"):
            time.sleep(0.001)
        assert watch.total("a") >= 0.002
        assert watch.counts["a"] == 2

    def test_mean(self):
        watch = Stopwatch()
        watch.add("x", 2.0)
        watch.add("x", 4.0)
        assert watch.mean("x") == pytest.approx(3.0)

    def test_unknown_lap_is_zero(self):
        assert Stopwatch().total("nope") == 0.0
        assert Stopwatch().mean("nope") == 0.0


class TestExceptions:
    def test_hierarchy(self):
        assert issubclass(ValidationError, ReproError)
        assert issubclass(ValidationError, ValueError)
        assert issubclass(InsufficientPointsError, ValidationError)

    def test_insufficient_points_message(self):
        err = InsufficientPointsError(5, 3)
        assert "5" in str(err) and "3" in str(err)

    def test_memory_budget_message(self):
        err = MemoryBudgetExceededError(10, 5, context="test")
        assert "10" in str(err) and "test" in str(err)
