"""Direct verification of the paper's lemmas on controlled instances.

These tests instrument the exact quantities the proofs manipulate — proxy
distances, optimal farness rho*_k, the (1 - eps') diversity retention — so
the constructions are checked against the *statements* of Lemmas 1-6, not
just against end-to-end quality.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest

from repro.coresets.characterization import (
    coreset_farness,
    injective_proxy_distance_bound,
    proxy_distance_bound,
)
from repro.coresets.gmm import gmm
from repro.coresets.gmm_ext import gmm_ext
from repro.coresets.smm import SMM
from repro.coresets.smm_ext import SMMExt
from repro.diversity.exact import divk_exact, divk_exact_subset
from repro.metricspace.points import PointSet


def _rho_star(points: PointSet, k: int) -> float:
    """Exact optimal farness (= remote-edge optimum) by enumeration."""
    return divk_exact(points, k, "remote-edge")


@pytest.fixture
def doubling_instance(rng):
    """A 2-d instance (bounded doubling dimension) of exact-solver size."""
    return PointSet(rng.random((24, 2)) * 10.0)


class TestLemma1Mechanism:
    """Lemma 1: a proxy function with d(o, p(o)) <= (eps'/2) rho*_k makes T
    a (1+eps)-core-set for remote-edge.  We verify the implication
    numerically: measure the realized proxy distance, derive the implied
    eps, and check div_k(T) respects it."""

    @pytest.mark.parametrize("k", [2, 3])
    def test_implication_holds_for_gmm_coresets(self, doubling_instance, k):
        points = doubling_instance
        rho_star = _rho_star(points, k)
        for k_prime in (2 * k, 4 * k, 8 * k):
            result = gmm(points, min(k_prime, len(points)))
            coreset = points.subset(result.indices)
            _, optimum = divk_exact_subset(points, k, "remote-edge")
            delta = proxy_distance_bound(points, coreset, np.asarray(optimum))
            # Realized eps' from delta = (eps'/2) rho*_k.
            eps_prime = min(2.0 * delta / rho_star, 0.999) if rho_star else 0.0
            implied_factor = 1.0 / (1.0 - eps_prime)
            reduced = divk_exact(coreset, k, "remote-edge")
            assert reduced >= divk_exact(points, k, "remote-edge") / implied_factor - 1e-9

    def test_proxy_distance_shrinks_with_k_prime(self, doubling_instance):
        """Lemma 5: the proxy distance is bounded by the GMM range, which
        shrinks as the kernel grows."""
        points = doubling_instance
        k = 3
        _, optimum = divk_exact_subset(points, k, "remote-edge")
        deltas = []
        for k_prime in (4, 8, 16):
            result = gmm(points, k_prime)
            coreset = points.subset(result.indices)
            deltas.append(proxy_distance_bound(points, coreset,
                                               np.asarray(optimum)))
        assert deltas[0] >= deltas[1] >= deltas[2] - 1e-12


class TestLemma2Mechanism:
    """Lemma 2 needs an *injective* proxy; GMM-EXT's delegates provide it
    (Lemma 6), and the bound shrinks with the kernel size."""

    def test_injective_proxy_for_ext_but_maybe_not_kernel(self, rng):
        # Three tight pairs far apart: optimum (k=4) uses two full pairs;
        # a 3-point kernel can't host injective proxies at small distance,
        # the EXT delegates can.
        base = np.asarray([[0.0, 0.0], [40.0, 0.0], [0.0, 40.0]])
        data = np.vstack([base, base + 0.3])
        points = PointSet(data)
        k = 4
        _, optimum = divk_exact_subset(points, k, "remote-clique")
        kernel = gmm(points, 3)
        kernel_set = points.subset(kernel.indices)
        kernel_bound = injective_proxy_distance_bound(
            points, kernel_set, np.asarray(optimum))
        ext = gmm_ext(points, k=k, k_prime=3)
        ext_set = points.subset(ext.indices)
        ext_bound = injective_proxy_distance_bound(
            points, ext_set, np.asarray(optimum))
        assert ext_bound <= 0.5             # delegates sit inside the pairs
        assert kernel_bound > 10.0          # kernel alone must reuse far points

    @pytest.mark.parametrize("k", [2, 3])
    def test_ext_coreset_preserves_clique_value(self, doubling_instance, k):
        points = doubling_instance
        full = divk_exact(points, k, "remote-clique")
        ext = gmm_ext(points, k=k, k_prime=4 * k)
        coreset = points.subset(ext.indices)
        reduced = divk_exact(coreset, k, "remote-clique")
        assert reduced >= full / 1.25 - 1e-9


class TestLemma3And4Mechanism:
    """Streaming: the SMM range bound r_T <= 4 d_ell and the SMM-EXT
    injective-proxy property (Lemma 4)."""

    def test_smm_proxy_bound_from_threshold(self, rng):
        data = rng.random((300, 2)) * 10.0
        sketch = SMM(k=4, k_prime=12)
        sketch.process_batch(data)
        coreset_points = sketch.centers()
        points = PointSet(data)
        coreset = PointSet(coreset_points)
        bound = proxy_distance_bound(points, coreset, np.arange(len(points)))
        assert bound <= 4.0 * sketch.threshold + 1e-9

    def test_smm_ext_injective_proxy_for_optimum(self, rng):
        data = np.vstack([
            rng.random((60, 2)),
            np.asarray([[30.0, 30.0], [30.3, 30.0], [30.0, 30.3]]),
        ])
        points = PointSet(data)
        k = 3
        _, optimum = divk_exact_subset(points, k, "remote-clique")
        sketch = SMMExt(k=k, k_prime=8)
        sketch.process_batch(data)
        coreset = sketch.finalize()
        bound = injective_proxy_distance_bound(points, coreset,
                                               np.asarray(optimum))
        # Distinct delegates near the far trio must exist.
        assert bound <= 4.0 * sketch.threshold + 1e-9


class TestFact1:
    """Fact 1 (r*_k <= rho*_k) on exhaustive instances."""

    @pytest.mark.parametrize("n,k", [(8, 2), (8, 3), (10, 3)])
    def test_exhaustive(self, n, k, rng):
        points = PointSet(rng.random((n, 2)))
        dist = points.pairwise()
        r_star = min(
            float(dist[:, np.asarray(s)].min(axis=1).max())
            for s in combinations(range(n), k)
        )
        rho_star = max(
            coreset_farness(points, np.asarray(s))
            for s in combinations(range(n), k)
        )
        assert r_star <= rho_star + 1e-12
