"""Tests for the experiment harness: reference values, trials, reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import sphere_shell
from repro.diversity.exact import divk_exact
from repro.experiments.harness import (
    approximation_ratio,
    run_trials,
    summarize,
)
from repro.experiments.reference import reference_value
from repro.experiments.report import format_series, format_table
from repro.metricspace.points import PointSet


class TestReferenceValue:
    def test_upper_bounded_by_optimum_on_small_instances(self, rng):
        pts = PointSet(rng.random((14, 2)))
        for objective in ("remote-edge", "remote-clique", "remote-tree"):
            exact = divk_exact(pts, 3, objective)
            reference = reference_value(pts, 3, objective)
            assert reference <= exact + 1e-9
            assert reference >= exact / 2.0 - 1e-9  # strong runs get close

    def test_finds_planted_optimum(self):
        pts = sphere_shell(1000, 8, dim=3, seed=3)
        reference = reference_value(pts, 8, "remote-edge")
        # The 8 planted points have min pairwise distance well above the
        # 0.8-ball's contribution; reference should exploit them.
        assert reference > 0.4


class TestHarness:
    def test_ratio(self):
        assert approximation_ratio(2.0, 1.0) == pytest.approx(2.0)
        assert approximation_ratio(2.0, 0.0) == float("inf")

    def test_run_trials_reproducible(self):
        def run(gen):
            return float(gen.random()), {}

        a = run_trials(run, trials=3, seed=0)
        b = run_trials(run, trials=3, seed=0)
        assert [x.value for x in a] == [x.value for x in b]
        assert len(a) == 3

    def test_summarize(self):
        def run(gen):
            return float(gen.integers(1, 10)), {"tag": 1}

        summary = summarize(run_trials(run, trials=5, seed=1))
        assert summary.trials == 5
        assert summary.min_value <= summary.mean_value <= summary.max_value
        assert summary.mean_seconds >= 0.0

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_ratio_against(self):
        def run(gen):
            return 2.0, {}

        summary = summarize(run_trials(run, trials=2, seed=0))
        assert summary.ratio_against(4.0) == pytest.approx(2.0)


class TestReport:
    def test_table_alignment(self):
        text = format_table(["k", "ratio"], [[8, 1.0234], [128, 1.1]])
        lines = text.splitlines()
        assert lines[0].startswith("k")
        assert "1.023" in text
        assert len(lines) == 4

    def test_table_with_title(self):
        text = format_table(["a"], [[1]], title="Figure 1")
        assert text.splitlines()[0] == "Figure 1"

    def test_large_and_small_floats(self):
        text = format_table(["v"], [[123456.0], [0.00001]])
        assert "e+" in text or "e5" in text
        assert "e-" in text

    def test_series(self):
        text = format_series("k'=2k", [8, 32], [1.1, 1.2])
        assert "k'=2k" in text and "8 -> 1.1" in text
