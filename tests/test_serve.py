"""Lifecycle tests for the ``repro serve`` daemon.

Each test drives a real :class:`~repro.service.server.DiversityServer`
over loopback TCP inside ``asyncio.run`` (no pytest-asyncio in the
toolchain).  Covered contracts:

* daemon answers — NDJSON and HTTP — are bit-identical to in-process
  ``query_batch`` on the same index;
* micro-batching coalesces pipelined requests (and the batched-request
  counter proves it);
* a full admission queue rejects cleanly with ``overloaded`` +
  ``retry_after_ms`` while every admitted request is still answered;
* graceful drain answers everything admitted, exactly once, and a
  SIGTERM'd CLI daemon exits 0 the same way;
* a mid-load ``refresh`` swaps epochs without ever mixing epochs inside
  one response;
* registry mode — ``dataset`` envelopes route to the named tenant,
  unknown tenants map to ``unknown_dataset`` (HTTP 404), ``tenants`` /
  ``GET /tenants`` serve the registry counters, refreshes land on one
  tenant only, and single-index daemons reject tenant routing.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro.datasets.loaders import save_points
from repro.metricspace.points import PointSet
from repro.service import (
    DiversityServer,
    DiversityService,
    IndexRegistry,
    Query,
    ServerConfig,
    TenantQuota,
    build_coreset_index,
    make_workload,
)
from repro.service import protocol


@pytest.fixture(scope="module")
def index():
    rng = np.random.default_rng(11)
    points = PointSet(rng.normal(size=(150, 3)))
    return build_coreset_index(points, 5, seed=0)


def fresh_server(index, **config) -> DiversityServer:
    service = DiversityService(index, cache_size=256)
    return DiversityServer(service, ServerConfig(**config))


async def send_lines(host, port, lines):
    """Open one connection, pipeline *lines*, return decoded responses."""
    reader, writer = await asyncio.open_connection(host, port)
    for line in lines:
        writer.write(line.encode())
    await writer.drain()
    responses = []
    for _ in range(len(lines)):
        responses.append(protocol.decode_response(await reader.readline()))
    writer.close()
    await writer.wait_closed()
    return responses


def result_key(result) -> tuple:
    return (result.value, tuple(result.indices), result.rung)


def test_tcp_answers_bit_identical_to_in_process(index):
    workload = make_workload(5, 12, seed=3)
    with DiversityService(index, cache_size=256) as oracle:
        expected = [result_key(r) for r in oracle.query_batch(workload)]

    async def run():
        server = fresh_server(index, batch_window_ms=5.0)
        host, port = await server.start()
        try:
            lines = [protocol.encode_request("query", i, queries=[query])
                     for i, query in enumerate(workload)]
            responses = await send_lines(host, port, lines)
        finally:
            await server.shutdown()
        return responses, server.stats()

    responses, stats = asyncio.run(run())
    by_id = {response["id"]: response for response in responses}
    assert all(by_id[i]["ok"] for i in range(len(workload)))
    got = [result_key(protocol.results_of(by_id[i])[0])
           for i in range(len(workload))]
    assert got == expected
    # Pipelined requests were coalesced by the micro-batching window.
    assert stats["server"]["batched_requests"] > 0
    assert stats["server"]["batches_dispatched"] < len(workload)
    assert stats["server"]["accepted"] == len(workload)
    assert stats["server"]["internal_errors"] == 0
    # The latency block sampled every request.
    assert stats["server"]["latency"]["count"] == len(workload)
    assert stats["server"]["latency"]["p50_ms"] <= \
        stats["server"]["latency"]["p99_ms"]


def test_http_adapter_matches_in_process(index):
    query = Query("remote-clique", 4, 1.0)
    with DiversityService(index, cache_size=16) as oracle:
        expected = result_key(oracle.query_batch([query])[0])

    async def http(host, port, method, target, body=b""):
        reader, writer = await asyncio.open_connection(host, port)
        head = (f"{method} {target} HTTP/1.1\r\nHost: t\r\n"
                f"Content-Length: {len(body)}\r\n\r\n").encode()
        writer.write(head + body)
        await writer.drain()
        raw = await reader.read()
        writer.close()
        await writer.wait_closed()
        status = int(raw.split(b" ", 2)[1])
        return status, json.loads(raw.split(b"\r\n\r\n", 1)[1])

    async def run():
        server = fresh_server(index, batch_window_ms=1.0)
        host, port = await server.start()
        try:
            answered = await http(
                host, port, "POST", "/query",
                json.dumps({"queries": [query.to_dict()]}).encode())
            health = await http(host, port, "GET", "/healthz")
            stats = await http(host, port, "GET", "/stats")
            missing = await http(host, port, "GET", "/nope")
            wrong_verb = await http(host, port, "GET", "/query")
            bad_body = await http(host, port, "POST", "/query", b"{oops")
        finally:
            await server.shutdown()
        return answered, health, stats, missing, wrong_verb, bad_body

    answered, health, stats, missing, wrong_verb, bad_body = asyncio.run(run())
    assert answered[0] == 200
    assert result_key(protocol.results_of(answered[1])[0]) == expected
    assert health == (200, {"status": "ok", "draining": False})
    assert stats[0] == 200
    assert stats[1]["schema_version"] == protocol.SCHEMA_VERSION
    assert stats[1]["server"]["http_requests"] >= 2
    assert missing[0] == 404
    assert wrong_verb[0] == 405
    assert bad_body[0] == 400


def test_full_queue_rejects_cleanly_with_retry_after(index):
    # window=0 + burst in one segment: every request line is admitted
    # before the collector runs, so the tiny queue must overflow.
    async def run():
        server = fresh_server(index, batch_window_ms=0.0, max_queue=2,
                              max_batch=2, retry_after_ms=25.0)
        host, port = await server.start()
        try:
            lines = [protocol.encode_request(
                "query", i, queries=[Query("remote-edge", 3, 1.0)])
                for i in range(12)]
            responses = await send_lines(host, port, lines)
        finally:
            await server.shutdown()
        return responses, server.stats()["server"]

    responses, stats = asyncio.run(run())
    accepted = [r for r in responses if r["ok"]]
    rejected = [r for r in responses if not r["ok"]]
    assert rejected, "queue of 2 must overflow under a burst of 12"
    assert len(accepted) + len(rejected) == 12
    assert len(accepted) == stats["accepted"]
    for response in rejected:
        assert response["error"]["code"] == "overloaded"
        assert response["error"]["retry_after_ms"] == 25.0
    # Every accepted request was answered (none dropped on shutdown).
    assert all(r["results"] for r in accepted)
    assert stats["rejected_overload"] == len(rejected)
    assert stats["internal_errors"] == 0
    client = next(iter(stats["clients"].values()))
    assert client["accepted"] == len(accepted)
    assert client["rejected"] == len(rejected)


def test_drain_answers_admitted_work_and_rejects_new(index):
    async def run():
        server = fresh_server(index, batch_window_ms=50.0, max_queue=32)
        host, port = await server.start()
        reader, writer = await asyncio.open_connection(host, port)
        for i in range(6):
            writer.write(protocol.encode_request(
                "query", i, queries=[Query("remote-edge", 2 + i % 3, 1.0)]
            ).encode())
        await writer.drain()
        # Begin draining while the batch window is still open.
        await asyncio.sleep(0.005)
        shutdown = asyncio.ensure_future(server.shutdown())
        responses = [protocol.decode_response(await reader.readline())
                     for _ in range(6)]
        await shutdown
        writer.close()
        await writer.wait_closed()

        # The drained server accepts no new connections.
        with pytest.raises(OSError):
            await asyncio.open_connection(host, port)
        return responses, server.stats()["server"]

    responses, stats = asyncio.run(run())
    assert [r["id"] for r in responses] == sorted(r["id"] for r in responses)
    assert all(r["ok"] for r in responses), \
        "everything admitted before drain must be answered"
    assert {r["id"] for r in responses} == set(range(6))  # no drops/dupes
    assert stats["accepted"] == 6 and stats["queries_served"] == 6


def test_draining_server_rejects_with_shutting_down(index):
    async def run():
        server = fresh_server(index)
        host, port = await server.start()
        server._draining = True  # simulate mid-drain admission attempt
        try:
            responses = await send_lines(host, port, [
                protocol.encode_request(
                    "query", 1, queries=[Query("remote-edge", 3, 1.0)]),
                protocol.encode_request("healthz", 2),
            ])
        finally:
            server._draining = False
            await server.shutdown()
        return responses

    responses = asyncio.run(run())
    by_id = {r["id"]: r for r in responses}
    assert by_id[1]["error"]["code"] == "shutting_down"
    assert by_id[2]["ok"] and by_id[2]["draining"]


def test_refresh_under_load_never_mixes_epochs(index, tmp_path):
    rng = np.random.default_rng(23)
    extra = PointSet(rng.normal(size=(60, 3)))
    data_path = tmp_path / "extra"
    save_points(extra, data_path)

    async def run():
        server = fresh_server(index, batch_window_ms=2.0, max_queue=256)
        host, port = await server.start()
        reader, writer = await asyncio.open_connection(host, port)
        workload = make_workload(5, 30, seed=9)
        refresh_id = "refresh"
        sent = 0
        try:
            for i, query in enumerate(workload):
                writer.write(protocol.encode_request(
                    "query", i, queries=[query, query]).encode())
                sent += 1
                if i == 8:  # refresh while queries are in flight
                    writer.write(protocol.encode_request(
                        "refresh", refresh_id, data=str(data_path)).encode())
                    sent += 1
                await writer.drain()
                await asyncio.sleep(0.001)
            responses = [protocol.decode_response(await reader.readline())
                         for _ in range(sent)]
        finally:
            writer.close()
            await writer.wait_closed()
            await server.shutdown()
        return responses

    responses = asyncio.run(run())
    refresh = next(r for r in responses if r["id"] == "refresh")
    assert refresh["ok"] and refresh["epoch"] == 1
    assert refresh["absorbed"] == 60
    epochs_seen = set()
    for response in responses:
        if response["id"] == "refresh":
            continue
        assert response["ok"], response
        epochs = {result["epoch"] for result in response["results"]}
        assert len(epochs) == 1, \
            "one response must never mix results from two epochs"
        epochs_seen |= epochs
    assert epochs_seen == {0, 1}, \
        "load spanning the swap must observe both epochs"


# -- registry (multi-tenant) mode ---------------------------------------------


@pytest.fixture(scope="module")
def tenant_indexes():
    out = {}
    for name, seed in (("eu", 31), ("us", 32)):
        rng = np.random.default_rng(seed)
        points = PointSet(rng.normal(size=(130, 3)))
        out[name] = build_coreset_index(points, 5, seed=0)
    return out


def fresh_registry_server(tenant_indexes, **config) -> DiversityServer:
    registry = IndexRegistry()
    for name, tenant_index in tenant_indexes.items():
        registry.register(name, tenant_index)
    return DiversityServer(registry, ServerConfig(**config))


async def _http(host, port, method, target, body=b""):
    reader, writer = await asyncio.open_connection(host, port)
    head = (f"{method} {target} HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(body)}\r\n\r\n").encode()
    writer.write(head + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    status = int(raw.split(b" ", 2)[1])
    return status, json.loads(raw.split(b"\r\n\r\n", 1)[1])


def test_registry_server_routes_by_dataset(tenant_indexes):
    query = Query("remote-edge", 4, 1.0)
    expected = {}
    for name, tenant_index in tenant_indexes.items():
        with DiversityService(tenant_index, cache_size=16) as oracle:
            expected[name] = result_key(oracle.query_batch([query])[0])
    assert expected["eu"] != expected["us"], \
        "test needs tenants with distinguishable answers"

    async def run():
        server = fresh_registry_server(tenant_indexes, batch_window_ms=5.0)
        host, port = await server.start()
        try:
            lines = [protocol.encode_request("query", name, queries=[query],
                                             dataset=name)
                     for name in ("eu", "us", "eu")]
            lines.append(protocol.encode_request("tenants", "t"))
            lines.append(protocol.encode_request("query", "missing",
                                                 queries=[query],
                                                 dataset="mars"))
            responses = await send_lines(host, port, lines)
            stats = server.stats()
        finally:
            await server.shutdown()
        return responses, stats

    responses, stats = asyncio.run(run())
    by_id = {response["id"]: response for response in responses}
    for name in ("eu", "us"):
        assert by_id[name]["ok"], by_id[name]
        assert result_key(protocol.results_of(by_id[name])[0]) == \
            expected[name]
    assert by_id["missing"]["error"]["code"] == "unknown_dataset"
    assert "mars" in by_id["missing"]["error"]["message"]
    tenants = by_id["t"]["tenants"]
    assert set(tenants["per_tenant"]) == {"eu", "us"}
    # GET /stats in registry mode serves the registry stats verbatim,
    # with the server block alongside.
    assert stats["tenants"]["registered"] == 2
    assert stats["server"]["internal_errors"] == 0


def test_registry_server_http_tenants_and_404(tenant_indexes):
    query = Query("remote-clique", 4, 1.0)

    async def run():
        server = fresh_registry_server(tenant_indexes, batch_window_ms=1.0)
        host, port = await server.start()
        try:
            routed = await _http(
                host, port, "POST", "/query",
                json.dumps({"queries": [query.to_dict()],
                            "dataset": "eu"}).encode())
            unknown = await _http(
                host, port, "POST", "/query",
                json.dumps({"queries": [query.to_dict()],
                            "dataset": "mars"}).encode())
            unnamed = await _http(
                host, port, "POST", "/query",
                json.dumps({"queries": [query.to_dict()]}).encode())
            tenants = await _http(host, port, "GET", "/tenants")
        finally:
            await server.shutdown()
        return routed, unknown, unnamed, tenants

    routed, unknown, unnamed, tenants = asyncio.run(run())
    assert routed[0] == 200 and routed[1]["ok"]
    assert unknown[0] == 404
    assert unknown[1]["error"]["code"] == "unknown_dataset"
    # Two tenants and no 'dataset' field: the request must name one.
    assert unnamed[0] == 400
    assert tenants[0] == 200
    assert set(tenants[1]["per_tenant"]) == {"eu", "us"}
    assert tenants[1]["registered"] == 2


def test_registry_server_refresh_targets_one_tenant(tenant_indexes,
                                                    tmp_path):
    extra = PointSet(np.random.default_rng(77).normal(size=(50, 3)))
    data_path = tmp_path / "extra"
    save_points(extra, data_path)
    query = Query("remote-edge", 4, 1.0)

    async def run():
        server = fresh_registry_server(tenant_indexes, batch_window_ms=1.0)
        host, port = await server.start()
        try:
            first = await send_lines(host, port, [protocol.encode_request(
                "refresh", "r", data=str(data_path), dataset="eu")])
            after = await send_lines(host, port, [
                protocol.encode_request("query", name, queries=[query],
                                        dataset=name)
                for name in ("eu", "us")])
        finally:
            await server.shutdown()
        return first + after

    by_id = {r["id"]: r for r in asyncio.run(run())}
    refresh = by_id["r"]
    assert refresh["ok"] and refresh["dataset"] == "eu"
    assert refresh["epoch"] == 1 and refresh["absorbed"] == 50
    assert by_id["eu"]["results"][0]["epoch"] == 1
    assert by_id["us"]["results"][0]["epoch"] == 0


def test_qos_hot_flood_never_starves_cold_tenant(tenant_indexes):
    """Starvation regression: a hot tenant saturating its queue must not
    delay or reject an under-quota cold tenant, and QoS reordering must
    keep answers bit-identical to the in-process service."""
    cold_query = Query("remote-edge", 4, 1.0)
    with DiversityService(tenant_indexes["eu"], cache_size=16) as oracle:
        expected = result_key(oracle.query_batch([cold_query])[0])

    async def run():
        registry = IndexRegistry()
        # Hot tenant: tiny queue so the flood overruns it; cold tenant
        # keeps default quota.
        registry.register("us", tenant_indexes["us"],
                          quota=TenantQuota(weight=1.0, max_queue=2))
        registry.register("eu", tenant_indexes["eu"])
        server = DiversityServer(registry, ServerConfig(
            qos=True, batch_window_ms=1.0, max_batch=4))
        host, port = await server.start()
        try:
            async def flood():
                reader, writer = await asyncio.open_connection(host, port)
                for i in range(120):
                    # Vary k to defeat the result cache and keep the
                    # hot backlog genuinely saturated.
                    writer.write(protocol.encode_request(
                        "query", f"hot-{i}",
                        queries=[Query("remote-edge", 2 + i % 4, 1.0)],
                        dataset="us").encode())
                await writer.drain()
                responses = []
                for _ in range(120):
                    responses.append(
                        protocol.decode_response(await reader.readline()))
                writer.close()
                await writer.wait_closed()
                return responses

            async def trickle():
                responses = []
                for i in range(8):
                    responses += await send_lines(host, port, [
                        protocol.encode_request(
                            "query", f"cold-{i}", queries=[cold_query],
                            dataset="eu")])
                return responses

            hot_task = asyncio.create_task(flood())
            cold = await trickle()
            hot = await hot_task
            stats = server.stats()
        finally:
            await server.shutdown()
        return hot, cold, stats

    hot, cold, stats = asyncio.run(run())
    # Every cold request was answered — zero rejections, bit-identical.
    assert len(cold) == 8
    for response in cold:
        assert response["ok"], response
        assert result_key(protocol.results_of(response)[0]) == expected
    # The flood overran the hot tenant's 2-deep queue: rejections are
    # per-tenant and carry the dataset plus a tenant-specific hint.
    rejected = [r for r in hot if not r["ok"]]
    assert rejected, "flood never saturated the hot queue"
    for response in rejected:
        assert response["error"]["code"] == "overloaded"
        assert response["error"]["dataset"] == "us"
        assert response["error"]["retry_after_ms"] > 0
    qos = stats["server"]["qos"]
    assert qos["per_tenant"]["eu"]["rejected"] == 0
    assert qos["per_tenant"]["eu"]["dispatched"] == 8
    assert qos["per_tenant"]["us"]["rejected"] == len(rejected)
    assert stats["server"]["rejected_datasets"] == {"us": len(rejected)}
    assert qos["per_tenant"]["eu"]["latency"]["count"] == 8


def test_single_index_server_rejects_tenant_routing(index):
    async def run():
        server = fresh_server(index)
        host, port = await server.start()
        try:
            responses = await send_lines(host, port, [
                protocol.encode_request(
                    "query", 1, queries=[Query("remote-edge", 3, 1.0)],
                    dataset="eu"),
                protocol.encode_request("tenants", 2),
            ])
            missing = await _http(host, port, "GET", "/tenants")
        finally:
            await server.shutdown()
        return responses, missing

    responses, missing = asyncio.run(run())
    by_id = {r["id"]: r for r in responses}
    assert by_id[1]["error"]["code"] == "bad_request"
    assert "--registry" in by_id[1]["error"]["message"]
    assert by_id[2]["error"]["code"] == "bad_request"
    assert missing[0] == 404  # no /tenants route on a single-index daemon


def test_sigterm_drains_cli_daemon_cleanly(index, tmp_path):
    """End-to-end: ``repro serve`` answers over TCP and drains on SIGTERM."""
    rng = np.random.default_rng(5)
    points = PointSet(rng.normal(size=(120, 3)))
    data = tmp_path / "data"
    idx = tmp_path / "idx"
    save_points(points, data)
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    build = subprocess.run(
        [sys.executable, "-m", "repro", "index", "--data", str(data),
         "--k-max", "4", "--out", str(idx)],
        env=env, capture_output=True, text=True, timeout=300)
    assert build.returncode == 0, build.stderr

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--index", str(idx),
         "--port", "0", "--batch-window-ms", "5"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        ready = proc.stdout.readline()
        assert "serving" in ready, ready
        host_port = ready.split(" on ", 1)[1].split(" ", 1)[0]
        host, port = host_port.rsplit(":", 1)

        async def chat():
            lines = [protocol.encode_request(
                "query", i, queries=[Query("remote-edge", 3, 1.0)])
                for i in range(4)]
            return await send_lines(host, int(port), lines)

        responses = asyncio.run(chat())
        assert all(r["ok"] for r in responses)
        values = {r["results"][0]["value"] for r in responses}
        assert len(values) == 1  # deterministic answers across requests

        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, stderr
    assert "drained:" in stdout
    assert "Traceback" not in stderr
