"""Tests for the build-once/serve-many query service subsystem."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.coresets.composable import ladder_parameters, practical_coreset_size
from repro.datasets.synthetic import gaussian_clusters, sphere_shell
from repro.diversity.objectives import list_objectives
from repro.diversity.sequential.registry import solve_sequential
from repro.exceptions import ValidationError
from repro.mapreduce.algorithm import MRDiversityMaximizer
from repro.service import (
    CoresetIndex,
    DiversityService,
    LRUCache,
    Query,
    build_coreset_index,
    family_of,
    load_index,
    make_workload,
    measure_service_throughput,
    save_index,
)


@pytest.fixture(scope="module")
def dataset():
    return sphere_shell(2500, 16, dim=3, seed=5)


@pytest.fixture(scope="module")
def index(dataset):
    return build_coreset_index(dataset, k_max=16, k_min=4, parallelism=4,
                               seed=0)


# -- ladder sizing helpers ----------------------------------------------------

class TestLadderParameters:
    def test_geometric_ladder(self):
        assert ladder_parameters(32) == [(4, 16), (8, 32), (16, 64), (32, 128)]

    def test_k_max_always_covered(self):
        for k_max in (1, 3, 5, 24, 100):
            rungs = ladder_parameters(k_max)
            assert rungs[-1][0] == k_max
            assert all(kp == 4 * cap for cap, kp in rungs)

    def test_custom_multiplier_and_growth(self):
        assert ladder_parameters(27, multiplier=2, growth=3, k_min=3) == \
            [(3, 6), (9, 18), (27, 54)]

    def test_k_min_above_k_max_collapses(self):
        assert ladder_parameters(4, k_min=64) == [(4, 16)]

    def test_rejects_bad_growth(self):
        with pytest.raises(ValueError):
            ladder_parameters(8, growth=1)

    def test_practical_size_clamps_theory(self):
        # Default slack: the Section 7 sweet spot, regardless of how
        # explosive the theoretical sizing is.
        assert practical_coreset_size(8, 1.0, 10.0, "remote-edge") == 4 * 8
        # Tighter slack widens the multiplier (4/eps)...
        assert practical_coreset_size(8, 0.5, 10.0, "remote-edge") == 8 * 8
        # ...but never beyond the dimension band (16 at high D)...
        assert practical_coreset_size(8, 0.1, 10.0, "remote-edge") == 16 * 8
        # ...and low-dimensional data stays small even for tight eps.
        assert practical_coreset_size(8, 0.1, 0.5, "remote-edge") == 4 * 8
        # Dimension ~0: theory is tiny, but never below k.
        assert practical_coreset_size(8, 1.0, 0.0, "remote-edge") >= 8


# -- coreset-only MapReduce build ---------------------------------------------

class TestBuildCoreset:
    def test_matches_run_coreset(self, dataset):
        with MRDiversityMaximizer(k=4, k_prime=16, objective="remote-edge",
                                  parallelism=4, seed=7) as algo:
            build = algo.build_coreset(dataset)
            again = algo.build_coreset(dataset)
            result = algo.run(dataset)
        assert build.k == 4 and build.k_prime == 16
        # Deterministic for an integer seed, and exactly run()'s round 1.
        assert build.coreset.points.tobytes() == again.coreset.points.tobytes()
        assert len(build.coreset) == result.coreset_size
        coreset_rows = {row.tobytes() for row in build.coreset.points}
        assert all(row.tobytes() in coreset_rows
                   for row in result.solution.points)

    def test_overrides_build_a_ladder_with_one_maximizer(self, dataset):
        with MRDiversityMaximizer(k=4, k_prime=16, objective="remote-clique",
                                  parallelism=2, seed=1) as algo:
            small = algo.build_coreset(dataset, k=4, k_prime=16)
            large = algo.build_coreset(dataset, k=8, k_prime=32)
        assert len(large.coreset) > len(small.coreset)
        assert (large.k, large.k_prime) == (8, 32)

    def test_rejects_k_prime_below_k(self, dataset):
        with MRDiversityMaximizer(k=4, k_prime=16, objective="remote-edge",
                                  parallelism=2) as algo:
            with pytest.raises(ValidationError):
                algo.build_coreset(dataset, k=8, k_prime=4)


# -- index build and routing --------------------------------------------------

class TestCoresetIndex:
    def test_builds_both_families(self, index):
        assert index.families == ["gmm", "gmm-ext"]
        assert [r.key for r in index.rungs["gmm"]] == \
            [("gmm", 4, 16), ("gmm", 8, 32), ("gmm", 16, 64)]
        assert index.build_calls == 6
        assert index.dimension_estimate > 0

    def test_family_of_covers_all_objectives(self):
        families = {family_of(name) for name in list_objectives()}
        assert families == {"gmm", "gmm-ext"}
        assert family_of("remote-edge") == "gmm"
        assert family_of("remote-clique") == "gmm-ext"

    def test_routing_picks_cheapest_covering_rung(self, index):
        # Routing is monotone: larger k (or tighter eps) never routes to a
        # smaller rung, and a k above the penultimate cap must take the top.
        small = index.route("remote-edge", k=2)
        tight = index.route("remote-edge", k=2, epsilon=0.05)
        large = index.route("remote-edge", k=12)
        assert small.k_prime <= tight.k_prime
        assert small.k_prime <= large.k_prime
        assert large is index.rungs["gmm"][-1]
        # The cheapest rung still meets the practical sizing for its query.
        assert small.k_prime >= practical_coreset_size(
            2, 1.0, index.dimension_estimate, "remote-edge")

    def test_routing_respects_family(self, index):
        assert index.route("remote-cycle", 4).family == "gmm"
        assert index.route("remote-star", 4).family == "gmm-ext"

    def test_routing_rejects_oversized_k(self, index):
        with pytest.raises(ValidationError, match="k_max"):
            index.route("remote-edge", k=17)

    def test_routing_rejects_missing_family(self, dataset):
        gmm_only = build_coreset_index(dataset, k_max=8, k_min=8,
                                       families=("gmm",), seed=0)
        assert gmm_only.route("remote-edge", 4).family == "gmm"
        with pytest.raises(ValidationError, match="families"):
            gmm_only.route("remote-clique", 4)

    def test_unknown_family_rejected(self, dataset):
        with pytest.raises(ValidationError, match="unknown family"):
            build_coreset_index(dataset, k_max=8, families=("smm",))

    def test_serial_and_process_builds_bit_identical(self, dataset):
        serial = build_coreset_index(dataset, k_max=8, k_min=4,
                                     parallelism=3, executor="serial", seed=9)
        process = build_coreset_index(dataset, k_max=8, k_min=4,
                                      parallelism=3, executor="process",
                                      seed=9)
        serial_rungs = serial.all_rungs()
        process_rungs = process.all_rungs()
        assert [r.key for r in serial_rungs] == [r.key for r in process_rungs]
        for ours, theirs in zip(serial_rungs, process_rungs):
            assert ours.coreset.points.tobytes() == \
                theirs.coreset.points.tobytes()


# -- the service: caching, batching, warm-path guarantee ----------------------

class TestDiversityService:
    def test_query_matches_direct_solve_on_rung(self, index):
        service = DiversityService(index)
        result = service.query("remote-edge", 6)
        rung = index.route("remote-edge", 6)
        indices, value = solve_sequential(rung.coreset, 6, "remote-edge")
        assert np.array_equal(result.indices, indices)
        assert result.value == pytest.approx(value)
        assert result.rung == rung.key

    def test_repeat_query_is_cached_and_identical(self, index):
        service = DiversityService(index)
        first = service.query("remote-clique", 5)
        second = service.query("remote-clique", 5)
        assert not first.cached and second.cached
        assert second.value == first.value
        assert np.array_equal(second.indices, first.indices)
        assert service.cache.stats.hits == 1

    def test_cached_result_echoes_callers_epsilon(self, index):
        service = DiversityService(index)
        first = service.query("remote-edge", 3, epsilon=1.0)
        # A different epsilon that routes to the same rung hits the cache
        # but must report the caller's own slack, not the cached one's.
        tweaked = service.query("remote-edge", 3, epsilon=0.9)
        assert tweaked.rung == first.rung  # same-rung routing...
        assert tweaked.cached              # ...so served from the LRU...
        assert tweaked.epsilon == 0.9      # ...under the caller's slack
        assert tweaked.value == first.value

    def test_warm_queries_never_rebuild(self, dataset):
        service = DiversityService.from_dataset(dataset, k_max=8, k_min=4,
                                                seed=0)
        builds_after_ingest = service.build_calls
        assert builds_after_ingest == service.index.build_calls > 0
        for objective in list_objectives():
            service.query(objective, 4)
            service.query(objective, 7)
        assert service.build_calls == builds_after_ingest

    def test_lazy_build_happens_once_on_first_query(self, dataset):
        service = DiversityService(points=dataset, k_max=8, k_min=8, seed=0)
        assert service.index is None and service.build_calls == 0
        service.query("remote-edge", 4)
        builds = service.build_calls
        assert builds > 0 and service.index is not None
        service.query("remote-tree", 4)
        assert service.build_calls == builds

    def test_requires_index_or_dataset(self):
        with pytest.raises(ValidationError):
            DiversityService()

    def test_batch_preserves_order_and_shares_matrices(self, index):
        service = DiversityService(index)
        queries = [Query("remote-edge", 3), Query("remote-clique", 3),
                   Query("remote-edge", 5), Query("remote-clique", 3),
                   Query("remote-cycle", 4)]
        results = service.query_batch(queries)
        assert [(r.objective, r.k) for r in results] == \
            [("remote-edge", 3), ("remote-clique", 3), ("remote-edge", 5),
             ("remote-clique", 3), ("remote-cycle", 4)]
        # The in-batch repeat is served without a second solve.
        assert results[3].cached and not results[1].cached
        assert results[3].value == results[1].value
        # One pairwise matrix per distinct rung touched, not per query.
        rungs_touched = {r.rung for r in results}
        assert service.stats()["matrices"]["local"]["cached"] == len(rungs_touched)

    def test_batch_reuses_matrices_across_calls(self, index):
        service = DiversityService(index)
        first = service.query("remote-edge", 5)
        matrices = service.stats()["matrices"]["local"]["cached"]
        second = service.query("remote-edge", 7)  # same rung, different k
        assert second.rung == first.rung
        assert service.stats()["matrices"]["local"]["cached"] == matrices

    def test_in_batch_repeat_counts_as_one_hit_one_miss(self, index):
        service = DiversityService(index)
        results = service.query_batch([Query("remote-edge", 4),
                                       Query("remote-edge", 4)])
        assert not results[0].cached and results[1].cached
        # Stats agree with the flags: one solve (miss), one LRU hit.
        assert service.cache.stats.misses == 1
        assert service.cache.stats.hits == 1

    def test_in_batch_repeat_survives_lru_eviction(self, index):
        # A capacity-1 cache: solving the interleaved query evicts the
        # repeat's entry, which must then be served from the batch-local
        # memo instead of crashing.
        service = DiversityService(index, cache_size=1)
        results = service.query_batch([Query("remote-edge", 4),
                                       Query("remote-cycle", 4),
                                       Query("remote-edge", 4)])
        assert results[2].cached
        assert results[2].value == results[0].value
        assert np.array_equal(results[2].indices, results[0].indices)

    def test_malformed_query_rejected(self, index):
        service = DiversityService(index)
        with pytest.raises(ValidationError, match="cannot interpret"):
            service.query_batch(["remote-edge"])
        with pytest.raises(ValidationError):
            service.query("remote-edge", 4, epsilon=0.0)

    def test_stats_shape(self, index):
        from repro.service.service import SCHEMA_VERSION

        service = DiversityService(index)
        service.query("remote-edge", 4)
        stats = service.stats()
        assert stats["schema_version"] == SCHEMA_VERSION
        assert set(stats) == {"schema_version", "counters", "caches",
                              "matrices", "executors", "epochs", "verify",
                              "planner"}
        assert stats["planner"]["mode"] == "static"
        assert stats["counters"]["queries_answered"] == 1
        assert stats["counters"]["batches_answered"] == 1
        assert stats["epochs"]["index_built"] is True
        assert stats["epochs"]["dtype"] == "float64"
        assert set(stats["verify"]) == {
            "enabled", "fraction", "rtol", "checks", "value_mismatches",
            "index_mismatches", "ties"}
        assert stats["matrices"]["shared"] is None  # no process backend yet
        assert stats["executors"]["default"] == "serial"
        assert set(stats["caches"]["results"]) == {
            "hits", "misses", "evictions", "hit_rate", "entries", "capacity"}


# -- float64 shadow verify ----------------------------------------------------

class TestVerifyDtype:
    def test_float32_solves_are_shadow_checked(self, index):
        service = DiversityService(index.astype("float32"),
                                   verify_dtype=True, verify_fraction=1.0)
        for name in list_objectives():
            service.query(name, 5)
        verify = service.stats()["verify"]
        assert verify["enabled"] and verify["checks"] == len(list_objectives())
        assert verify["value_mismatches"] == 0
        assert verify["index_mismatches"] == 0

    def test_noop_on_float64_index(self, index):
        service = DiversityService(index, verify_dtype=True,
                                   verify_fraction=1.0)
        service.query("remote-edge", 4)
        assert service.stats()["verify"]["checks"] == 0

    def test_fraction_samples_a_stride(self, index):
        service = DiversityService(index.astype("float32"),
                                   verify_dtype=True, verify_fraction=0.5)
        workload = make_workload(8, 8, seed=3)
        service.query_batch(workload)
        checks = service.stats()["verify"]["checks"]
        assert 0 < checks < len(workload)

    def test_env_enables_verify(self, index, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_DTYPE", "1")
        monkeypatch.setenv("REPRO_VERIFY_FRACTION", "1.0")
        service = DiversityService(index.astype("float32"))
        service.query("remote-clique", 4)
        verify = service.stats()["verify"]
        assert verify["enabled"] and verify["checks"] == 1

    def test_cached_answers_are_not_reverified(self, index):
        service = DiversityService(index.astype("float32"),
                                   verify_dtype=True, verify_fraction=1.0)
        service.query("remote-edge", 4)
        service.query("remote-edge", 4)  # LRU hit — no fresh solve
        assert service.stats()["verify"]["checks"] == 1


# -- persistence --------------------------------------------------------------

class TestPersistence:
    def test_round_trip_is_bit_identical(self, index, tmp_path):
        path = tmp_path / "idx"
        save_index(index, path)
        loaded = load_index(path)
        assert isinstance(loaded, CoresetIndex)
        assert loaded.metric_name == index.metric_name
        assert loaded.dimension_estimate == index.dimension_estimate
        assert loaded.seed == index.seed
        assert [r.key for r in loaded.all_rungs()] == \
            [r.key for r in index.all_rungs()]
        for ours, theirs in zip(index.all_rungs(), loaded.all_rungs()):
            assert ours.coreset.points.tobytes() == \
                theirs.coreset.points.tobytes()

    def test_warm_service_answers_identically(self, index, tmp_path):
        path = tmp_path / "idx"
        fresh = DiversityService(index)
        fresh.save(path)
        warm = DiversityService.from_file(path)
        assert warm.build_calls == 0
        for objective, k in (("remote-edge", 6), ("remote-tree", 5)):
            a = fresh.query(objective, k)
            b = warm.query(objective, k)
            assert a.value == b.value
            assert np.array_equal(a.indices, b.indices)
        assert warm.build_calls == 0  # never rebuilt anything

    def test_missing_files_raise(self, tmp_path):
        with pytest.raises(ValidationError, match="no saved index"):
            load_index(tmp_path / "nope")

    def test_dotted_paths_do_not_collide(self, dataset, tmp_path):
        # Suffixes are appended, never substituted: "model.a" and
        # "model.b" must land on distinct files.
        a = build_coreset_index(dataset, k_max=4, k_min=4, families=("gmm",),
                                seed=1)
        b = build_coreset_index(dataset, k_max=8, k_min=8, families=("gmm",),
                                seed=2)
        save_index(a, tmp_path / "model.a")
        save_index(b, tmp_path / "model.b")
        assert (tmp_path / "model.a.npz").exists()
        assert (tmp_path / "model.b.npz").exists()
        assert [r.key for r in load_index(tmp_path / "model.a").all_rungs()] \
            == [r.key for r in a.all_rungs()]
        assert [r.key for r in load_index(tmp_path / "model.b").all_rungs()] \
            == [r.key for r in b.all_rungs()]

    def test_version_mismatch_raises(self, index, tmp_path):
        path = tmp_path / "idx"
        save_index(index, path)
        meta = json.loads((tmp_path / "idx.json").read_text())
        meta["format_version"] = 99
        (tmp_path / "idx.json").write_text(json.dumps(meta))
        with pytest.raises(ValidationError, match="format version"):
            load_index(path)

    def test_float32_round_trip_bit_exact(self, index, tmp_path):
        path = tmp_path / "idx32"
        index32 = index.astype("float32")
        save_index(index32, path)
        meta = json.loads((tmp_path / "idx32.json").read_text())
        assert meta["dtype"] == "float32"
        loaded = load_index(path)
        assert loaded.dtype == "float32"
        for ours, theirs in zip(index32.all_rungs(), loaded.all_rungs()):
            assert theirs.coreset.points.dtype == np.float32
            assert ours.coreset.points.tobytes() == \
                theirs.coreset.points.tobytes()

    def test_pre_dtype_files_load_as_float64(self, index, tmp_path):
        # A v2 sidecar written before the dtype field existed has no
        # "dtype" key; its arrays are float64 and must load unchanged.
        path = tmp_path / "idx"
        save_index(index, path)
        meta = json.loads((tmp_path / "idx.json").read_text())
        del meta["dtype"]
        (tmp_path / "idx.json").write_text(json.dumps(meta))
        loaded = load_index(path)
        assert loaded.dtype == "float64"
        assert all(r.coreset.points.dtype == np.float64
                   for r in loaded.all_rungs())

    def test_cast_on_load(self, index, tmp_path):
        path = tmp_path / "idx"
        save_index(index, path)
        fast = load_index(path, dtype="float32")
        assert fast.dtype == "float32"
        assert [r.key for r in fast.all_rungs()] == \
            [r.key for r in index.all_rungs()]
        # load_index(dtype=None) keeps the stored dtype untouched.
        assert load_index(path).dtype == "float64"


# -- LRU cache ----------------------------------------------------------------

class TestLRUCache:
    def test_eviction_order_is_lru(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)           # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_stats_accounting(self):
        cache = LRUCache(capacity=4)
        assert cache.get("missing") is None
        cache.put("x", 1)
        cache.get("x")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_put_refresh_does_not_grow(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1 and cache.get("a") == 2

    def test_capacity_validated(self):
        with pytest.raises(ValidationError):
            LRUCache(capacity=0)


# -- workload harness ---------------------------------------------------------

class TestWorkload:
    def test_workload_is_distinct_while_possible(self):
        workload = make_workload(8, 30, seed=0)
        assert len(workload) == 30
        assert len({(q.objective, q.k) for q in workload}) == 30
        assert all(2 <= q.k <= 8 for q in workload)

    def test_workload_reproducible(self):
        assert make_workload(8, 10, seed=3) == make_workload(8, 10, seed=3)

    def test_throughput_harness_accepts_prebuilt_index(self):
        points = gaussian_clusters(2000, centers=4, dim=3, seed=3)
        index = build_coreset_index(points, 8, k_min=4, seed=0)
        report = measure_service_throughput(points, 8, num_queries=6,
                                            rebuild_queries=1, index=index,
                                            seed=0)
        assert report.build_calls_during_queries == 0
        assert report.index_build_seconds < 0.05  # no rebuild happened

    def test_throughput_harness_contract(self):
        points = gaussian_clusters(4000, centers=6, dim=3, seed=2)
        report = measure_service_throughput(points, k_max=8, num_queries=8,
                                            rebuild_queries=2, k_min=4,
                                            parallelism=2, seed=0)
        assert report.num_queries == 8
        assert report.build_calls_during_queries == 0
        assert report.rebuild_qps > 0 and report.warm_qps > 0
        assert report.cached_qps > report.warm_qps
        payload = report.as_dict()
        assert payload["warm_speedup"] == pytest.approx(report.warm_speedup)
        assert payload["cache"]["hits"] >= 8
