"""White-box tests of the SMM doubling schedule on hand-built streams.

Random-data tests verify the invariants statistically; these tests pin the
exact mechanics — initialization threshold, merge survivors, delegate
transfers, count transfers — on streams constructed so every step is
predictable by hand.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coresets.smm import SMM
from repro.coresets.smm_ext import SMMExt
from repro.coresets.smm_gen import SMMGen


class TestInitialization:
    def test_threshold_is_min_pairwise_of_prefix(self):
        # k'+1 = 3 initial points at 0, 10, 14: d1 = 4.
        sketch = SMM(k=2, k_prime=2)
        sketch.process_batch(np.asarray([[0.0], [10.0], [14.0]]))
        assert sketch.threshold == pytest.approx(4.0)
        assert sketch.phases == 1  # the first merge ran immediately

    def test_first_merge_removes_covered_centers(self):
        # Merge threshold 2*d1 = 8: 14 is within 8 of 10 -> removed.
        sketch = SMM(k=2, k_prime=2)
        sketch.process_batch(np.asarray([[0.0], [10.0], [14.0]]))
        survivors = sorted(sketch.centers().ravel().tolist())
        assert survivors == [0.0, 10.0]
        assert len(sketch._removed) == 1
        assert sketch._removed[0][0] == pytest.approx(14.0)

    def test_update_threshold_is_4d(self):
        sketch = SMM(k=2, k_prime=2)
        sketch.process_batch(np.asarray([[0.0], [10.0], [14.0]]))
        # d = 4, so points within 16 of a center are absorbed.
        sketch.process(np.asarray([25.9]))  # d(25.9, 10) = 15.9 <= 16
        assert sketch.num_centers == 2
        phases_before = sketch.phases
        sketch.process(np.asarray([26.1]))  # 16.1 > 16 -> new center...
        # ...which fills T to capacity (k'+1 = 3) and triggers the next
        # phase: threshold doubles to 8 and the merge (limit 16) folds 26.1
        # back into 10's cluster.
        assert sketch.phases == phases_before + 1
        assert sketch.threshold == pytest.approx(8.0)
        assert sketch.num_centers <= 2
        # Coverage invariant: 26.1 is within 4d of a surviving center.
        dist = np.abs(sketch.centers().ravel() - 26.1)
        assert dist.min() <= 4.0 * sketch.threshold

    def test_repeated_doubling_when_all_far(self):
        # Initial points hugely separated: one merge pass keeps all three,
        # so the phase loop must double until the capacity constraint frees
        # a slot (|T| <= k').
        sketch = SMM(k=2, k_prime=2)
        sketch.process_batch(np.asarray([[0.0], [1000.0], [4000.0]]))
        assert sketch.num_centers <= 2
        assert sketch.threshold >= 1000.0 / 2.0


class TestExtTransfers:
    def test_absorbed_point_joins_nearest_delegate_set(self):
        sketch = SMMExt(k=2, k_prime=2)
        sketch.process_batch(np.asarray([[0.0], [10.0], [14.0]]))
        # After init merge: centers {0, 10}; E_10 inherited 14.
        sizes = dict(zip(sorted(c[0] for c in sketch.centers()),
                         [None, None]))
        assert sorted(sketch.delegate_sizes()) == [1, 2]
        # Absorb 9.0 -> nearest center 10, whose set is full (k=2): dropped.
        sketch.process(np.asarray([9.0]))
        assert sorted(sketch.delegate_sizes()) == [1, 2]
        # Absorb 1.0 -> nearest center 0, set has room.
        sketch.process(np.asarray([1.0]))
        assert sorted(sketch.delegate_sizes()) == [2, 2]

    def test_merge_transfer_caps_at_k(self):
        # k = 2: the survivor keeps at most 2 delegates even when the
        # removed center carries more candidates.
        sketch = SMMExt(k=2, k_prime=3)
        sketch.process_batch(np.asarray([[0.0], [100.0], [101.0], [102.0]]))
        assert all(size <= 2 for size in sketch.delegate_sizes())
        total = sum(sketch.delegate_sizes())
        assert total >= 2  # at least k payload points survive

    def test_finalize_contains_all_delegates(self):
        sketch = SMMExt(k=2, k_prime=2)
        data = np.asarray([[0.0], [10.0], [14.0], [1.0]])
        sketch.process_batch(data)
        out = sorted(sketch.finalize().points.ravel().tolist())
        assert 0.0 in out and 10.0 in out
        assert 1.0 in out or 14.0 in out


class TestGenCounts:
    def test_counts_track_delegate_sizes_exactly(self):
        data = np.asarray([[0.0], [10.0], [14.0], [1.0], [9.0], [0.5]])
        ext = SMMExt(k=2, k_prime=2)
        gen = SMMGen(k=2, k_prime=2)
        ext.process_batch(data)
        gen.process_batch(data)
        assert sorted(gen._counts) == sorted(ext.delegate_sizes())

    def test_radius_bound_is_4d(self):
        gen = SMMGen(k=2, k_prime=2)
        gen.process_batch(np.asarray([[0.0], [10.0], [14.0]]))
        assert gen.radius_bound() == pytest.approx(4.0 * gen.threshold)

    def test_uninitialized_radius_is_zero(self):
        gen = SMMGen(k=2, k_prime=4)
        gen.process(np.asarray([0.0]))
        assert gen.radius_bound() == 0.0


class TestPaddingPaths:
    def test_padding_from_merge_leftovers(self):
        # After the init merge only 2 centers remain but k = 3: finalize
        # must pull the removed 14.0 back in.
        sketch = SMM(k=3, k_prime=3)
        sketch.process_batch(np.asarray([[0.0], [10.0], [14.0], [13.0]]))
        out = sketch.finalize()
        assert len(out) >= 3

    def test_padding_by_replication_for_duplicate_streams(self):
        sketch = SMM(k=4, k_prime=4)
        sketch.process_batch(np.zeros((10, 2)))
        out = sketch.finalize()
        assert len(out) == 4
        assert np.allclose(out.points, 0.0)
