"""White-box tests for the 3-round MapReduce algorithm's plumbing.

The 3-round path (Theorem 10) carries kernel *provenance* across rounds:
round 2's coherent subset must be routed back to the partitions that own
each kernel point so round 3 can materialize delegates locally.  These
tests pin that routing and the instantiation reducer on constructed
instances where the correct answer is known exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coresets.generalized import GeneralizedCoreset
from repro.exceptions import ValidationError
from repro.mapreduce.algorithm import (
    MRDiversityMaximizer,
    _instantiation_reducer,
    _match_kernel_rows,
)
from repro.metricspace.distance import EuclideanMetric
from repro.metricspace.points import PointSet


def _gcore(points, mult):
    return GeneralizedCoreset(points=np.asarray(points, dtype=float),
                              multiplicities=np.asarray(mult),
                              metric=EuclideanMetric())


class TestMatchKernelRows:
    def test_identity_subset(self):
        union = _gcore([[0.0], [1.0], [2.0]], [2, 2, 2])
        subset = _gcore([[0.0], [1.0], [2.0]], [1, 1, 1])
        assert _match_kernel_rows(union, subset) == {0: 1, 1: 1, 2: 1}

    def test_sparse_subset_preserves_order(self):
        union = _gcore([[0.0], [1.0], [2.0], [3.0]], [2, 2, 2, 2])
        subset = _gcore([[1.0], [3.0]], [2, 1])
        assert _match_kernel_rows(union, subset) == {1: 2, 3: 1}

    def test_duplicate_kernel_coordinates_resolve_forward(self):
        # Two partitions may contribute the same coordinates; the forward
        # scan maps each subset row to the earliest unconsumed union row.
        union = _gcore([[5.0], [5.0], [9.0]], [1, 1, 1])
        subset = _gcore([[5.0], [9.0]], [1, 1])
        assert _match_kernel_rows(union, subset) == {0: 1, 2: 1}

    def test_missing_point_raises(self):
        union = _gcore([[0.0], [1.0]], [1, 1])
        subset = _gcore([[7.0]], [1])
        with pytest.raises(ValidationError):
            _match_kernel_rows(union, subset)


class TestInstantiationReducer:
    def test_materializes_requested_counts(self):
        partition = PointSet([[0.0], [0.1], [0.2], [9.0], [9.1]])
        local = _gcore([[0.0], [9.0]], [2, 1])
        delegates = _instantiation_reducer((partition, local))
        assert delegates.shape == (3, 1)
        values = sorted(delegates.ravel().tolist())
        assert values[:2] == [0.0, 0.1]
        assert values[2] in (9.0,)

    def test_none_subset_yields_empty(self):
        partition = PointSet([[0.0, 1.0]])
        delegates = _instantiation_reducer((partition, None))
        assert delegates.shape == (0, 2)


class TestThreeRoundEndToEnd:
    def test_delegates_come_from_owning_partitions(self):
        """Construct two well-separated partitions (chunk strategy keeps
        them intact) and check every returned delegate belongs to the
        partition that owns its kernel point."""
        rng = np.random.default_rng(0)
        left = rng.normal(loc=0.0, scale=0.2, size=(100, 2))
        right = rng.normal(loc=50.0, scale=0.2, size=(100, 2))
        points = PointSet(np.vstack([left, right]))
        algo = MRDiversityMaximizer(k=4, k_prime=4, objective="remote-clique",
                                    parallelism=2, seed=0,
                                    partition_strategy="chunk")
        result = algo.run_three_round(points)
        assert result.k == 4
        solution = result.solution.points
        # Every delegate is near one of the two partition centers.
        near_left = np.linalg.norm(solution - 0.0, axis=1) < 5.0
        near_right = np.linalg.norm(solution - 50.0, axis=1) < 5.0
        assert np.all(near_left | near_right)
        # Both far clusters must be represented (clique wants both sides).
        assert near_left.any() and near_right.any()

    def test_expanded_size_reported(self):
        rng = np.random.default_rng(1)
        points = PointSet(rng.random((300, 2)))
        algo = MRDiversityMaximizer(k=3, k_prime=6, objective="remote-tree",
                                    parallelism=3, seed=0)
        result = algo.run_three_round(points)
        assert result.extra["expanded_size"] >= result.coreset_size
        assert result.coreset_size <= 3 * 6  # l * k' kernel points
