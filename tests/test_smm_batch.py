"""Batch/sequential equivalence for the SMM sketch family.

``process_batch`` promises *exact* sequential semantics: for any stream
and any batching of it, the resulting centers, threshold, phase count,
subclass payloads (delegates / counts), merge leftovers, and peak-memory
accounting are identical to point-at-a-time ingestion.  These tests pin
that promise with seeded sweeps and hypothesis-driven random streams,
random batch splits, and adversarial inputs (exact duplicates, integer
lattices with distance ties, hostile arrival orders).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coresets.smm import SMM
from repro.coresets.smm_ext import SMMExt
from repro.coresets.smm_gen import SMMGen
from repro.exceptions import NotFittedError, ValidationError

SKETCHES = (SMM, SMMExt, SMMGen)


def _make_stream(rng: np.random.Generator, n: int, dim: int, style: str) -> np.ndarray:
    if style == "gaussian":
        return rng.normal(size=(n, dim))
    if style == "lattice":
        # Small-integer coordinates: exact float arithmetic, lots of
        # distance ties and exact duplicates.
        return rng.integers(-6, 7, size=(n, dim)).astype(np.float64)
    # "duplicates": long runs of repeated rows, exercising the
    # initialization duplicate-absorb path and delegate capping.
    base = rng.normal(size=(max(1, n // 8), dim))
    return np.repeat(base, 8, axis=0)[:n]


def _split_batches(rng: np.random.Generator, data: np.ndarray) -> list[np.ndarray]:
    blocks = []
    index = 0
    while index < len(data):
        size = int(rng.integers(1, len(data) + 2))
        blocks.append(data[index:index + size])
        index += size
    return blocks


def _ingest_sequential(sketch, data: np.ndarray) -> None:
    for row in data:
        sketch.process(row)


def _assert_same_state(sequential, batched) -> None:
    assert batched.points_seen == sequential.points_seen
    assert batched.num_centers == sequential.num_centers
    assert batched.threshold == sequential.threshold
    assert batched.phases == sequential.phases
    assert batched.peak_memory_points == sequential.peak_memory_points
    assert np.array_equal(batched.centers(), sequential.centers())
    assert len(batched._removed) == len(sequential._removed)
    for ours, theirs in zip(batched._removed, sequential._removed):
        assert np.array_equal(ours, theirs)
    if isinstance(sequential, SMMExt):
        assert batched.delegate_sizes() == sequential.delegate_sizes()
        for ours, theirs in zip(batched._delegates, sequential._delegates):
            assert np.array_equal(np.vstack(ours), np.vstack(theirs))
    if isinstance(sequential, SMMGen):
        assert batched._counts == sequential._counts
        assert batched.radius_bound() == sequential.radius_bound()


class TestBatchEquivalence:
    @pytest.mark.parametrize("cls", SKETCHES)
    @pytest.mark.parametrize("style", ["gaussian", "lattice", "duplicates"])
    def test_seeded_sweep(self, cls, style):
        """Deterministic sweep over stream shapes and random batch splits."""
        for seed in range(8):
            rng = np.random.default_rng(1000 * seed + hash(style) % 1000)
            n = int(rng.integers(1, 500))
            dim = int(rng.integers(1, 5))
            k = int(rng.integers(1, 6))
            k_prime = k + int(rng.integers(0, 10))
            data = _make_stream(rng, n, dim, style)
            sequential, batched = cls(k, k_prime), cls(k, k_prime)
            _ingest_sequential(sequential, data)
            for block in _split_batches(rng, data):
                batched.process_batch(block)
            _assert_same_state(sequential, batched)

    @settings(deadline=None, max_examples=40)
    @given(
        cls=st.sampled_from(SKETCHES),
        metric=st.sampled_from(["euclidean", "manhattan", "chebyshev"]),
        style=st.sampled_from(["gaussian", "lattice", "duplicates"]),
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(1, 200),
        dim=st.integers(1, 4),
        k=st.integers(1, 5),
        slack=st.integers(0, 7),
    )
    def test_property_random_streams_and_batchings(
            self, cls, metric, style, seed, n, dim, k, slack):
        """For random streams and random batch sizes, batched ingestion is
        bit-identical to sequential for SMM, SMM-EXT, and SMM-GEN."""
        rng = np.random.default_rng(seed)
        data = _make_stream(rng, n, dim, style)
        k_prime = k + slack
        sequential, batched = cls(k, k_prime, metric), cls(k, k_prime, metric)
        _ingest_sequential(sequential, data)
        for block in _split_batches(rng, data):
            batched.process_batch(block)
        _assert_same_state(sequential, batched)

    @pytest.mark.parametrize("cls", [SMM, SMMExt])
    def test_finalize_matches(self, cls, rng):
        data = _make_stream(rng, 400, 3, "gaussian")
        sequential, batched = cls(4, 9), cls(4, 9)
        _ingest_sequential(sequential, data)
        batched.process_batch(data)
        assert np.array_equal(batched.finalize().points,
                              sequential.finalize().points)

    def test_finalize_generalized_matches(self, rng):
        data = _make_stream(rng, 400, 3, "gaussian")
        sequential, batched = SMMGen(4, 9), SMMGen(4, 9)
        _ingest_sequential(sequential, data)
        batched.process_batch(data)
        ours = batched.finalize_generalized()
        theirs = sequential.finalize_generalized()
        assert np.array_equal(ours.points, theirs.points)
        assert np.array_equal(ours.multiplicities, theirs.multiplicities)

    def test_mixed_point_and_batch_ingestion(self, rng):
        """Interleaving process and process_batch matches pure sequential."""
        data = _make_stream(rng, 300, 2, "gaussian")
        sequential, mixed = SMMExt(3, 7), SMMExt(3, 7)
        _ingest_sequential(sequential, data)
        mixed.process(data[0])
        mixed.process_batch(data[1:200])
        mixed.process(data[200])
        mixed.process_batch(data[201:])
        _assert_same_state(sequential, mixed)

    def test_batch_spanning_initialization(self, rng):
        """One block larger than k'+1 crosses the init/update boundary."""
        data = _make_stream(rng, 100, 2, "gaussian")
        sequential, batched = SMM(2, 4), SMM(2, 4)
        _ingest_sequential(sequential, data)
        batched.process_batch(data)
        assert batched.threshold == sequential.threshold
        _assert_same_state(sequential, batched)


class TestBatchInterface:
    def test_rejects_after_finalize(self):
        sketch = SMM(k=1, k_prime=1)
        sketch.process_batch(np.asarray([[0.0]]))
        sketch.finalize()
        with pytest.raises(NotFittedError):
            sketch.process_batch(np.asarray([[1.0]]))

    def test_empty_batch_is_noop(self):
        sketch = SMM(k=2, k_prime=4)
        sketch.process_batch(np.empty((0, 3)))
        assert sketch.points_seen == 0
        sketch.process_batch(np.asarray([[0.0], [5.0]]))
        sketch.process_batch(np.empty((0, 1)))
        assert sketch.points_seen == 2

    def test_one_dimensional_input_is_a_column(self):
        """A 1-d array means n one-dimensional points, like the per-point
        row-wise reading."""
        flat, nested = SMM(2, 3), SMM(2, 3)
        flat.process_batch(np.asarray([0.0, 1.0, 5.0, 9.0]))
        nested.process_batch(np.asarray([[0.0], [1.0], [5.0], [9.0]]))
        assert np.array_equal(flat.centers(), nested.centers())

    def test_dimension_mismatch_rejected(self):
        sketch = SMM(k=2, k_prime=4)
        sketch.process_batch(np.asarray([[0.0, 1.0]]))
        with pytest.raises(ValidationError):
            sketch.process_batch(np.asarray([[0.0, 1.0, 2.0]]))

    def test_non_finite_rejected(self):
        sketch = SMM(k=2, k_prime=4)
        with pytest.raises(ValidationError):
            sketch.process_batch(np.asarray([[0.0], [np.nan]]))

    def test_three_dimensional_input_rejected(self):
        with pytest.raises(ValidationError):
            SMM(k=2, k_prime=4).process_batch(np.zeros((2, 3, 4)))

    def test_process_many_is_deprecated_alias(self, rng):
        data = _make_stream(rng, 120, 2, "gaussian")
        old, new = SMM(3, 6), SMM(3, 6)
        with pytest.warns(DeprecationWarning, match="process_batch"):
            old.process_many(data)
        new.process_batch(data)
        _assert_same_state(new, old)

    @pytest.mark.parametrize("sketch_cls", SKETCHES)
    def test_process_many_deprecated_across_family(self, rng, sketch_cls):
        """Every sketch in the family warns and matches process_batch."""
        data = _make_stream(rng, 150, 3, "duplicates")
        old, new = sketch_cls(3, 9), sketch_cls(3, 9)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            old.process_many(data)
        new.process_batch(data)
        _assert_same_state(new, old)
        if sketch_cls is SMMGen:
            ours, theirs = old.finalize_generalized(), new.finalize_generalized()
            assert np.array_equal(ours.points, theirs.points)
            assert np.array_equal(ours.multiplicities, theirs.multiplicities)
        else:
            assert np.array_equal(old.finalize().points, new.finalize().points)
