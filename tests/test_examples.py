"""Smoke tests for every ``examples/`` script.

Each example is imported as a module (its ``main()`` is guarded by
``__name__ == "__main__"``), its size constants are patched down to
tiny-but-representative values, and ``main()`` must run to completion and
print its headline output.  This keeps the narrative scripts honest:
an API change that breaks an example now breaks the suite.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"

#: script -> (patched constants, required stdout fragment)
EXAMPLES = {
    "quickstart.py": (
        {"N": 1200, "K": 4, "K_PRIME": 16},
        "Streaming (1 pass)",
    ),
    "facility_dispersion.py": (
        {"N": 900, "K": 4},
        "closest pair of sites",
    ),
    "news_stream_diversification.py": (
        {"FEED_SIZE": 250, "K": 4, "K_PRIME": 16},
        "diversified selection improves",
    ),
    "catalog_mapreduce_diversification.py": (
        {"CATALOG": 800, "SHARDS": 4, "K": 8, "K_PRIME": 16},
        "3-round algorithm shrinks the aggregation memory",
    ),
    "search_results_matroid.py": (
        {"RESULTS_PER_SITE": 50, "K": 6},
        "matroid-constrained",
    ),
}


def _load_example(script: str):
    path = EXAMPLES_DIR / script
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    # Register so dataclasses/pickle-adjacent machinery can resolve it.
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    except Exception:
        sys.modules.pop(spec.name, None)
        raise
    return module


@pytest.mark.parametrize("script", sorted(EXAMPLES))
def test_example_runs(script, capsys):
    overrides, fragment = EXAMPLES[script]
    module = _load_example(script)
    try:
        for name, value in overrides.items():
            assert hasattr(module, name), \
                f"{script} no longer defines {name}; update the smoke test"
            setattr(module, name, value)
        module.main()
    finally:
        sys.modules.pop(module.__name__, None)
    out = capsys.readouterr().out
    assert fragment in out, f"{script} output missing {fragment!r}"


def test_every_example_is_covered():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXAMPLES), \
        "examples/ changed; keep the smoke-test table in sync"
