"""Tests for the PointSet container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metricspace.points import PointSet


class TestConstruction:
    def test_basic(self):
        ps = PointSet([[0.0, 0.0], [1.0, 1.0]])
        assert len(ps) == 2
        assert ps.dim == 2
        assert ps.metric.name == "euclidean"

    def test_1d_input_becomes_column(self):
        ps = PointSet([1.0, 2.0, 3.0])
        assert (len(ps), ps.dim) == (3, 1)

    def test_metric_by_name(self):
        assert PointSet([[1.0, 0.0]], metric="cosine").metric.name == "cosine"

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            PointSet(np.empty((0, 2)))

    def test_iteration_and_indexing(self):
        ps = PointSet([[0.0], [1.0]])
        rows = list(ps)
        assert len(rows) == 2
        assert np.array_equal(ps[1], np.asarray([1.0]))


class TestDerivedSets:
    def test_subset(self, small_points):
        sub = small_points.subset([0, 2, 4])
        assert len(sub) == 3
        assert np.array_equal(sub.points[1], small_points.points[2])

    def test_subset_preserves_metric(self):
        ps = PointSet([[1.0, 0.0], [0.0, 1.0]], metric="cosine")
        assert ps.subset([0]).metric.name == "cosine"

    def test_concat(self, small_points):
        joined = small_points.concat(small_points)
        assert len(joined) == 2 * len(small_points)

    def test_concat_metric_mismatch(self):
        a = PointSet([[1.0, 0.0]], metric="euclidean")
        b = PointSet([[1.0, 0.0]], metric="cosine")
        with pytest.raises(ValueError):
            a.concat(b)

    def test_split_covers_everything(self, medium_points):
        parts = medium_points.split(7)
        assert sum(len(p) for p in parts) == len(medium_points)
        assert len(parts) == 7


class TestDistances:
    def test_pairwise_diagonal(self, small_points):
        mat = small_points.pairwise()
        assert np.allclose(np.diag(mat), 0.0)

    def test_cross_shape(self, small_points):
        sub = small_points.subset([0, 1])
        assert small_points.cross(sub).shape == (len(small_points), 2)

    def test_distance_to_set(self, line_points):
        assert line_points.distance_to_set(np.asarray([3.0])) == pytest.approx(1.0)

    def test_nearest_index(self, line_points):
        assert line_points.nearest_index(np.asarray([7.5])) == 4  # point 8.0

    def test_diameter(self, line_points):
        assert line_points.diameter() == pytest.approx(16.0)
