"""Tests for GMM and its anticover / k-center guarantees."""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.coresets.characterization import coreset_farness, coreset_range
from repro.coresets.gmm import gmm, gmm_on_matrix
from repro.exceptions import InsufficientPointsError
from repro.metricspace.points import PointSet


def _optimal_range(points: PointSet, k: int) -> float:
    """Exact r*_k by enumeration (tiny instances only)."""
    n = len(points)
    best = np.inf
    dist = points.pairwise()
    for subset in combinations(range(n), k):
        idx = np.asarray(subset)
        best = min(best, float(dist[:, idx].min(axis=1).max()))
    return best


class TestGMMBasics:
    def test_selects_k_distinct(self, medium_points):
        result = gmm(medium_points, 10)
        assert len(result.indices) == 10
        assert len(set(result.indices.tolist())) == 10

    def test_line_selection_order(self, line_points):
        # From 0: farthest is 16, then 8 (dist 8 to {0,16}), then 4...
        result = gmm(line_points, 4, first_index=0)
        chosen = [float(line_points.points[i][0]) for i in result.indices]
        assert chosen == [0.0, 16.0, 8.0, 4.0]

    def test_anticover_radii_non_increasing(self, medium_points):
        result = gmm(medium_points, 20)
        radii = result.anticover_radii[1:]
        assert np.all(radii[:-1] >= radii[1:] - 1e-12)

    def test_range_equals_max_min_dist(self, medium_points):
        result = gmm(medium_points, 8)
        assert result.range == pytest.approx(
            coreset_range(medium_points, result.indices)
        )

    def test_assignment_is_nearest_center(self, medium_points):
        result = gmm(medium_points, 6)
        centers = medium_points.subset(result.indices)
        cross = medium_points.cross(centers)
        expected = cross.argmin(axis=1)
        # Ties broken toward earlier centers; with random data ties are
        # measure-zero so exact equality is expected.
        assert np.array_equal(result.assignment, expected)

    def test_k_equals_n(self, small_points):
        result = gmm(small_points, len(small_points))
        assert sorted(result.indices.tolist()) == list(range(len(small_points)))
        assert result.range == pytest.approx(0.0)

    def test_k_too_large_rejected(self, small_points):
        with pytest.raises(InsufficientPointsError):
            gmm(small_points, len(small_points) + 1)

    def test_first_index_respected(self, medium_points):
        result = gmm(medium_points, 4, first_index=17)
        assert result.indices[0] == 17

    def test_bad_first_index(self, small_points):
        with pytest.raises(ValueError):
            gmm(small_points, 2, first_index=99)

    def test_random_start_deterministic_for_seed(self, medium_points):
        a = gmm(medium_points, 5, seed=3).indices
        b = gmm(medium_points, 5, seed=3).indices
        assert np.array_equal(a, b)


class TestGMMGuarantees:
    def test_anticover_property(self, medium_points):
        """r_T <= d_k <= rho_T for the full selection (anticover)."""
        result = gmm(medium_points, 12)
        r_t = coreset_range(medium_points, result.indices)
        rho_t = coreset_farness(medium_points, result.indices)
        d_last = float(result.anticover_radii[-1])
        assert r_t <= d_last + 1e-9
        assert d_last <= rho_t + 1e-9

    def test_prefix_radius_brackets(self, medium_points):
        result = gmm(medium_points, 12)
        for k in (3, 6, 9):
            prefix_range = coreset_range(medium_points, result.indices[:k])
            assert prefix_range <= result.prefix_radius(k) + 1e-9

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_2_approximation_for_k_center(self, k, rng):
        pts = PointSet(rng.random((12, 2)))
        result = gmm(pts, k)
        r_t = coreset_range(pts, result.indices)
        assert r_t <= 2.0 * _optimal_range(pts, k) + 1e-9

    def test_fact1_range_le_farness(self, rng):
        """Fact 1: r*_k <= rho*_k, witnessed on tiny exact instances."""
        pts = PointSet(rng.random((9, 2)))
        for k in (2, 3):
            r_star = _optimal_range(pts, k)
            rho_star = max(
                coreset_farness(pts, np.asarray(subset))
                for subset in combinations(range(9), k)
            )
            assert r_star <= rho_star + 1e-9


class TestGMMOnMatrix:
    def test_matches_pointset_gmm(self, medium_points):
        from_matrix = gmm_on_matrix(medium_points.pairwise(), 7, first_index=0)
        from_points = gmm(medium_points, 7, first_index=0).indices
        assert np.array_equal(from_matrix, from_points)

    def test_handles_zero_distance_copies(self):
        # Duplicate rows (multiset expansion): copies picked only at the end.
        xs = np.asarray([0.0, 0.0, 5.0, 10.0])
        dist = np.abs(xs[:, None] - xs[None, :])
        indices = gmm_on_matrix(dist, 3, first_index=0)
        values = sorted(xs[indices].tolist())
        assert values == [0.0, 5.0, 10.0]

    def test_bad_first_index(self):
        with pytest.raises(ValueError):
            gmm_on_matrix(np.zeros((3, 3)), 2, first_index=5)


@settings(max_examples=25, deadline=None)
@given(points=arrays(np.float64, (10, 2), elements=st.floats(0, 100, allow_nan=False)),
       k=st.integers(2, 5))
def test_gmm_anticover_property_random(points, k):
    pts = PointSet(points + np.arange(10)[:, None] * 1e-7)
    result = gmm(pts, k)
    r_t = coreset_range(pts, result.indices)
    rho_t = coreset_farness(pts, result.indices)
    # Scale-aware slack: the Gram-expansion kernel's absolute distance
    # error for near-duplicate points of norm ~R is about R * sqrt(eps)
    # (catastrophic cancellation before the sqrt), so a fixed 1e-6 is not
    # sound for coordinates up to 100 — hypothesis eventually finds
    # duplicate floods where rho_t computes as exactly 0 while r_t is
    # ~1.1e-6 of pure rounding noise.
    scale = float(np.linalg.norm(pts.points, axis=1).max())
    tolerance = 4.0 * scale * np.sqrt(np.finfo(np.float64).eps) + 1e-9
    assert r_t <= rho_t + tolerance
