"""Multi-tenant :class:`~repro.service.registry.IndexRegistry` tests.

Covers the registry PR's acceptance criteria:

* evict -> fault-back bit-identity — a tenant bounced through the cold
  tier answers exactly like an always-hot replica, across all six
  objectives, both dtypes, and the serial vs process executors;
* no cross-tenant aliasing — two tenants with identically-shaped rungs
  return different answers (cache keys open with ``(dataset_id,
  epoch)``);
* hot/cold tiering counters — ``stats()["tenants"]`` counts faults,
  evictions and residency truthfully across transitions;
* per-tenant refresh is epoch-safe under concurrent cross-tenant load
  and epochs stay monotonic across eviction;
* manifest round-trip — ``save_manifest`` / ``from_directory`` rebuild
  an answer-identical registry; malformed manifests are rejected;
* leak-free lifecycle — a process-executor registry publishes zero
  shared-memory segments after ``close()``.
"""

from __future__ import annotations

import json
import os
import threading

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metricspace.points import PointSet
from repro.service import (
    MANIFEST_NAME,
    DiversityService,
    IndexRegistry,
    Query,
    UnknownDatasetError,
    build_coreset_index,
    load_index,
    save_index,
)
from repro.service.registry import MAX_RESIDENT_ENV_VAR

#: Three tenants with identically-shaped datasets (different contents).
TENANT_SEEDS = {"eu": 3, "us": 4, "apac": 5}

OBJECTIVES = ("remote-edge", "remote-clique", "remote-star", "remote-tree",
              "remote-cycle", "remote-bipartition")


def _points(seed: int, n: int = 140) -> PointSet:
    rng = np.random.default_rng(seed)
    return PointSet(rng.normal(size=(n, 3)))


def _shm_segments() -> set[str]:
    """Names of the POSIX shared-memory segments currently linked."""
    try:
        return {name for name in os.listdir("/dev/shm")
                if name.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux fallback
        return set()


def result_key(result) -> tuple:
    return (result.value, tuple(result.indices), result.rung)


@pytest.fixture(scope="module")
def indexes():
    return {name: build_coreset_index(_points(seed), 5, seed=0)
            for name, seed in TENANT_SEEDS.items()}


# -- evict -> fault-back bit-identity -----------------------------------------


@pytest.mark.parametrize("executor", ["serial", "process"])
@pytest.mark.parametrize("dtype", [None, "float32"])
def test_evict_fault_back_bit_identity(indexes, tmp_path, executor, dtype):
    """Tiered answers == always-hot answers, all objectives x dtypes."""
    paths = {}
    for name in ("eu", "us"):
        base = tmp_path / name
        save_index(indexes[name], base)
        paths[name] = base
    queries = [Query(objective, 4, 1.0) for objective in OBJECTIVES]
    expected = {}
    for name in ("eu", "us"):
        with DiversityService(load_index(paths[name], dtype=dtype),
                              cache_size=64) as oracle:
            expected[name] = [result_key(r)
                              for r in oracle.query_batch(queries)]
    with IndexRegistry(max_resident=1, executor=executor,
                       executor_workers=2) as registry:
        for name in ("eu", "us"):
            registry.register(name, path=paths[name], dtype=dtype)
        for _ in range(2):  # round 2 re-faults previously evicted tenants
            for name in ("eu", "us"):
                got = [result_key(r)
                       for r in registry.query_batch(queries, name)]
                assert got == expected[name]
        tenants = registry.stats()["tenants"]
        # max_resident=1 with alternating tenants: every visit after the
        # first of each tenant is a fault, every fault evicts the other.
        assert tenants["per_tenant"]["eu"]["faults"] == 2
        assert tenants["per_tenant"]["us"]["faults"] == 2
        assert tenants["evictions"] == 3
        assert tenants["resident"] == 1
        # The query path never rebuilds core-sets.
        with registry.attach("eu") as service:
            assert service.stats()["counters"]["build_calls"] == 0


# -- cross-tenant isolation ---------------------------------------------------


def test_same_shape_tenants_do_not_alias(indexes):
    """Identically-shaped rungs under one shared plane never collide."""
    with IndexRegistry() as registry:
        registry.register("eu", indexes["eu"])
        registry.register("us", indexes["us"])
        first = {name: registry.query(name, "remote-edge", 4)
                 for name in ("eu", "us")}
        assert first["eu"].value != first["us"].value
        # Both rung matrices live in the ONE shared cache, keyed apart
        # by their (dataset_id, epoch, ...) prefix.
        keys = list(registry._matrices._entries)
        assert {key[0] for key in keys} == {"eu", "us"}
        assert all(key[1] == 0 for key in keys)
        # Replays hit each tenant's own result cache, never the other's.
        for name in ("eu", "us"):
            again = registry.query(name, "remote-edge", 4)
            assert again.cached
            assert again.value == first[name].value


# -- tiering counters ---------------------------------------------------------


def test_stats_counts_residency_faults_and_hits(indexes):
    with IndexRegistry(max_resident=1) as registry:
        registry.register("eu", indexes["eu"])
        registry.register("us", indexes["us"])  # evicts "eu" (LRU)
        registry.query("eu", "remote-edge", 4)  # faults eu, evicts us
        registry.query("eu", "remote-edge", 4)  # result-cache hit
        registry.query("us", "remote-edge", 4)  # faults us, evicts eu
        stats = registry.stats()
        tenants = stats["tenants"]
        assert tenants["registered"] == 2
        assert tenants["resident"] == 1
        assert tenants["max_resident"] == 1
        per = tenants["per_tenant"]
        assert set(per) == {"eu", "us"}
        assert per["us"]["resident"] and not per["eu"]["resident"]
        assert per["us"]["resident_bytes"] > 0
        assert per["eu"]["resident_bytes"] == 0
        assert per["eu"]["hits"] == 1  # folded in at eviction time
        assert per["eu"]["faults"] == 1 and per["eu"]["evictions"] == 2
        assert per["us"]["faults"] == 1 and per["us"]["evictions"] == 1
        assert tenants["faults"] == 2 and tenants["evictions"] == 3
        for block in per.values():
            assert set(block) == {"resident", "hits", "faults", "evictions",
                                  "resident_bytes", "epoch", "dtype", "quota"}
            assert set(block["quota"]) == {"weight", "max_queue",
                                           "rate_limit_qps"}
            assert block["quota"]["weight"] == 1.0  # default quota
        assert stats["matrices"]["local"]["cached"] >= 1
        assert stats["executors"]["default"] == "serial"


def test_max_resident_env_fallback(monkeypatch):
    monkeypatch.setenv(MAX_RESIDENT_ENV_VAR, "2")
    with IndexRegistry() as registry:
        assert registry.max_resident == 2
    for junk in ("nope", "0", "-3"):
        monkeypatch.setenv(MAX_RESIDENT_ENV_VAR, junk)
        with IndexRegistry() as registry:
            assert registry.max_resident is None


# -- refresh ------------------------------------------------------------------


def test_refresh_is_tenant_scoped_and_epoch_monotonic(indexes):
    extra = _points(31, n=60)
    with IndexRegistry(max_resident=1) as registry:
        registry.register("eu", indexes["eu"])
        registry.register("us", indexes["us"])
        before_us = registry.query("us", "remote-edge", 4)
        assert registry.refresh("eu", extra) == ("eu", 1)
        after_eu = registry.query("eu", "remote-edge", 4)
        assert after_eu.epoch == 1
        # The other tenant is untouched: same epoch, same answer.
        again_us = registry.query("us", "remote-edge", 4)
        assert again_us.epoch == 0
        assert again_us.value == before_us.value
        # Bounce "eu" through the cold tier: the replayed epoch stays 1
        # and the refreshed answer survives the spill bit-exactly.
        back = registry.query("eu", "remote-edge", 4)
        assert registry.stats()["tenants"]["per_tenant"]["eu"]["faults"] > 0
        assert back.epoch == 1
        assert result_key(back) == result_key(after_eu)
    with DiversityService(indexes["eu"], cache_size=64) as oracle:
        oracle.refresh(extra)
        assert result_key(oracle.query("remote-edge", 4)) == result_key(back)


def test_refresh_under_concurrent_cross_tenant_load(indexes):
    with IndexRegistry() as registry:
        registry.register("eu", indexes["eu"])
        registry.register("us", indexes["us"])
        expected = result_key(registry.query("us", "remote-edge", 4))
        stop = threading.Event()
        mismatches: list = []

        def hammer():
            while not stop.is_set():
                got = registry.query("us", "remote-edge", 4)
                if result_key(got) != expected or got.epoch != 0:
                    mismatches.append(got)  # pragma: no cover - failure

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for round_number in range(1, 4):
                _, epoch = registry.refresh("eu", _points(40 + round_number,
                                                          n=50))
                assert epoch == round_number
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not mismatches
        assert registry.query("eu", "remote-edge", 4).epoch == 3


# -- membership + validation --------------------------------------------------


def test_membership_and_validation(indexes):
    registry = IndexRegistry()
    registry.register("eu", indexes["eu"])
    with pytest.raises(ValidationError, match="already registered"):
        registry.register("eu", indexes["eu"])
    with pytest.raises(UnknownDatasetError, match="serving: eu"):
        registry.query("nope", "remote-edge", 3)
    assert registry.resolve(None) == "eu"  # sole tenant is the default
    registry.register("us", indexes["us"])
    with pytest.raises(ValidationError, match="must name"):
        registry.resolve(None)
    with registry.attach("eu"):
        with pytest.raises(ValidationError, match="attached"):
            registry.detach("eu")
    registry.detach("eu")
    assert registry.list() == ["us"]
    with pytest.raises(ValidationError, match="exactly one"):
        registry.register("x")
    with pytest.raises(ValidationError, match="k_max"):
        registry.register("x", points=_points(1))
    registry.close()
    registry.close()  # idempotent
    with pytest.raises(ValidationError, match="closed"):
        registry.register("x", indexes["eu"])


def test_register_builds_from_points():
    with IndexRegistry() as registry:
        registry.register("built", points=_points(9, n=80), k_max=4, seed=0)
        result = registry.query("built", "remote-clique", 3)
        assert result.k == 3 and result.value > 0


# -- manifest persistence -----------------------------------------------------


def test_manifest_round_trip(indexes, tmp_path):
    external = tmp_path / "elsewhere" / "us"
    external.parent.mkdir()
    save_index(indexes["us"], external)
    fleet = tmp_path / "fleet"
    with IndexRegistry() as registry:
        registry.register("eu", indexes["eu"])  # in-memory, never spilled
        registry.register("us", path=external, dtype="float32")
        expected = {name: result_key(registry.query(name, "remote-clique", 4))
                    for name in ("eu", "us")}
        manifest = registry.save_manifest(fleet)
    payload = json.loads(manifest.read_text())
    assert payload["format_version"] == 2
    entries = {entry["dataset_id"]: entry for entry in payload["tenants"]}
    assert set(entries) == {"eu", "us"}
    assert entries["us"]["dtype"] == "float32"
    with IndexRegistry.from_directory(fleet) as reloaded:
        assert reloaded.list() == ["eu", "us"]
        for name, key in expected.items():
            assert result_key(reloaded.query(name, "remote-clique", 4)) == key


def test_manifest_v2_quota_round_trip(indexes, tmp_path):
    """Manifest v2 persists per-tenant QoS quotas; defaults stay terse."""
    from repro.service.qos import TenantQuota

    fleet = tmp_path / "fleet"
    with IndexRegistry() as registry:
        registry.register("hot", indexes["eu"],
                          quota=TenantQuota(weight=3.0, max_queue=8,
                                            rate_limit_qps=50.0))
        registry.register("cold", indexes["us"])  # default quota
        registry.save_manifest(fleet)
    payload = json.loads((fleet / MANIFEST_NAME).read_text())
    entries = {entry["dataset_id"]: entry for entry in payload["tenants"]}
    assert entries["hot"]["qos"] == {"weight": 3.0, "max_queue": 8,
                                     "rate_limit_qps": 50.0}
    assert "qos" not in entries["cold"]  # defaults are not spelled out
    with IndexRegistry.from_directory(fleet) as reloaded:
        quotas = reloaded.quotas()
        assert quotas["hot"] == TenantQuota(weight=3.0, max_queue=8,
                                            rate_limit_qps=50.0)
        assert quotas["cold"] == TenantQuota()
        per = reloaded.stats()["tenants"]["per_tenant"]
        assert per["hot"]["quota"] == {"weight": 3.0, "max_queue": 8,
                                       "rate_limit_qps": 50.0}


def test_manifest_v1_loads_with_default_quotas(indexes, tmp_path):
    """A PR-8 (format v1) manifest still loads; every quota defaults."""
    from repro.service.qos import TenantQuota

    fleet = tmp_path / "fleet"
    with IndexRegistry() as registry:
        registry.register("eu", indexes["eu"])
        registry.save_manifest(fleet)
    manifest = fleet / MANIFEST_NAME
    payload = json.loads(manifest.read_text())
    payload["format_version"] = 1  # rewrite as the previous format
    manifest.write_text(json.dumps(payload))
    with IndexRegistry.from_directory(fleet) as reloaded:
        assert reloaded.quotas() == {"eu": TenantQuota()}


def test_manifest_rejects_malformed_qos_block(indexes, tmp_path):
    fleet = tmp_path / "fleet"
    with IndexRegistry() as registry:
        registry.register("eu", indexes["eu"])
        registry.save_manifest(fleet)
    manifest = fleet / MANIFEST_NAME
    payload = json.loads(manifest.read_text())
    payload["tenants"][0]["qos"] = {"weight": -1}
    manifest.write_text(json.dumps(payload))
    with pytest.raises(ValidationError, match="qos"):
        IndexRegistry.from_directory(fleet)
    payload["tenants"][0]["qos"] = {"wieght": 2}
    manifest.write_text(json.dumps(payload))
    with pytest.raises(ValidationError, match="unknown"):
        IndexRegistry.from_directory(fleet)


def test_from_directory_rejects_bad_manifests(tmp_path):
    with pytest.raises(ValidationError, match="not a registry"):
        IndexRegistry.from_directory(tmp_path)
    manifest = tmp_path / MANIFEST_NAME
    manifest.write_text("{nope")
    with pytest.raises(ValidationError, match="malformed"):
        IndexRegistry.from_directory(tmp_path)
    manifest.write_text(json.dumps({"format_version": 99, "tenants": []}))
    with pytest.raises(ValidationError, match="format_version"):
        IndexRegistry.from_directory(tmp_path)
    manifest.write_text(json.dumps({"format_version": 1,
                                    "tenants": [{"index": "orphan"}]}))
    with pytest.raises(ValidationError, match="malformed tenant"):
        IndexRegistry.from_directory(tmp_path)


# -- lifecycle ----------------------------------------------------------------


def test_process_registry_leaves_no_segments(indexes):
    registry = IndexRegistry(executor="process", executor_workers=2)
    try:
        registry.register("eu", indexes["eu"])
        registry.register("us", indexes["us"])
        queries = [Query("remote-edge", 4), Query("remote-clique", 4)]
        for name in ("eu", "us"):
            registry.query_batch(queries, name)
        names = set(registry.segment_names())
        assert names, "process batches must publish shared segments"
        assert names <= _shm_segments()
    finally:
        registry.close()
    assert registry.segment_names() == []
    assert names & _shm_segments() == set()
