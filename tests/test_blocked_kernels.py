"""Property tests for the blocked distance-kernel layer.

Two contracts from the PR that introduced :mod:`repro.metricspace.blocked`:

* **Equivalence** — blocked ``cross``/``pairwise`` match the naive kernels
  for all six registered metrics on random shapes and tile sizes: exactly
  for the order-insensitive reductions (Chebyshev, Hamming) and for the
  per-dimension sums below numpy's pairwise-summation block (d < 8), and
  within a few ulps otherwise (accumulation order / BLAS shape effects).
* **Bounded intermediates** — under a small tile budget the broadcast
  metrics never materialize an ``(n, m, d)`` temporary; peak traced
  allocation stays a small multiple of the ``(n, m)`` result even when the
  naive kernel's intermediate would be ~100x larger.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metricspace.blocked import (
    KernelWorkspace,
    blocked_cross,
    blocked_pairwise,
    shared_workspace,
    tile_rows_for,
)
from repro.metricspace.distance import get_metric
from repro.tuning import recommend_tile_rows

METRIC_NAMES = ["euclidean", "manhattan", "chebyshev", "cosine", "jaccard",
                "hamming"]
BROADCAST_NAMES = ["manhattan", "chebyshev", "jaccard", "hamming"]


def _domain_points(metric_name: str, rng: np.random.Generator,
                   n: int, d: int) -> np.ndarray:
    raw = rng.normal(size=(n, d))
    if metric_name == "cosine":
        return raw + np.sign(raw) * 0.1 + 1e-9
    if metric_name == "jaccard":
        return np.abs(raw)
    if metric_name == "hamming":
        return (raw > 0).astype(float)
    return raw


@settings(max_examples=25, deadline=None)
@given(
    metric_name=st.sampled_from(METRIC_NAMES),
    n=st.integers(1, 40),
    m=st.integers(1, 33),
    d=st.integers(1, 24),
    tile_rows=st.integers(1, 48),
    data_seed=st.integers(0, 2**16),
)
def test_blocked_cross_matches_naive(metric_name, n, m, d, tile_rows,
                                     data_seed):
    metric = get_metric(metric_name)
    rng = np.random.default_rng(data_seed)
    left = _domain_points(metric_name, rng, n, d)
    right = _domain_points(metric_name, rng, m, d)
    naive = metric.cross(left, right)
    blocked = blocked_cross(metric, left, right, tile_rows=tile_rows,
                            workspace=KernelWorkspace())
    assert blocked.shape == naive.shape
    # Tight envelope: accumulation-order / BLAS-shape effects only.
    np.testing.assert_allclose(blocked, naive, rtol=1e-12, atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(
    metric_name=st.sampled_from(METRIC_NAMES),
    n=st.integers(2, 40),
    d=st.integers(1, 16),
    tile_rows=st.integers(1, 48),
    data_seed=st.integers(0, 2**16),
)
def test_blocked_pairwise_matches_naive(metric_name, n, d, tile_rows,
                                        data_seed):
    metric = get_metric(metric_name)
    rng = np.random.default_rng(data_seed)
    points = _domain_points(metric_name, rng, n, d)
    naive = metric.pairwise(points)
    blocked = blocked_pairwise(metric, points, tile_rows=tile_rows)
    np.testing.assert_allclose(blocked, naive, rtol=1e-12, atol=1e-10)
    assert np.all(np.diag(blocked) == 0.0)


@pytest.mark.parametrize("metric_name", BROADCAST_NAMES)
@pytest.mark.parametrize("tile_rows", [3, 16, 1000])
def test_broadcast_metrics_bit_identical_low_dim(metric_name, tile_rows):
    """Below numpy's pairwise-summation block (d < 8) the per-dimension
    accumulation visits terms in the same order as the naive reduction, so
    the results are bit-identical — tile boundaries included."""
    metric = get_metric(metric_name)
    rng = np.random.default_rng(7)
    for d in (1, 3, 7):
        left = _domain_points(metric_name, rng, 37, d)
        right = _domain_points(metric_name, rng, 23, d)
        naive = metric.cross(left, right)
        blocked = blocked_cross(metric, left, right, tile_rows=tile_rows)
        assert np.array_equal(naive, blocked), (metric_name, d, tile_rows)


@pytest.mark.parametrize("metric_name", BROADCAST_NAMES)
def test_peak_intermediate_memory_bounded(metric_name):
    """Under a small tile budget the broadcast metrics must not allocate
    anything close to the naive ``(n, m, d)`` intermediate."""
    metric = get_metric(metric_name)
    rng = np.random.default_rng(11)
    n = m = 300
    d = 40
    left = _domain_points(metric_name, rng, n, d)
    right = _domain_points(metric_name, rng, m, d)
    result_bytes = n * m * 8
    naive_intermediate_bytes = n * m * d * 8  # ~29 MB at these shapes

    workspace = KernelWorkspace()
    budget = 512 * 2**10  # 512 KiB of intermediates
    tile = tile_rows_for(metric, n, m, d, budget)
    assert tile < n  # the budget actually forces tiling at this shape
    tracemalloc.start()
    blocked = blocked_cross(metric, left, right, tile_rows=tile,
                            workspace=workspace)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    # Result + workspace scratch + slack; far below the naive intermediate.
    assert peak <= result_bytes + budget + 2**20, (
        f"{metric_name}: peak {peak} bytes vs naive intermediate "
        f"{naive_intermediate_bytes}"
    )
    assert peak < naive_intermediate_bytes / 4
    np.testing.assert_allclose(blocked, metric.cross(left, right),
                               rtol=1e-12, atol=1e-10)


class TestTileSizing:
    def test_budget_shrinks_tiles(self):
        metric = get_metric("manhattan")
        big = tile_rows_for(metric, 10_000, 1000, 8, 64 * 2**20)
        small = tile_rows_for(metric, 10_000, 1000, 8, 2**20)
        assert small < big
        assert small >= 1

    def test_tile_never_exceeds_rows(self):
        metric = get_metric("euclidean")
        assert tile_rows_for(metric, 10, 10, 3, 2**30) == 10

    def test_recommendation_is_recordable(self):
        tuning = recommend_tile_rows("jaccard", 5000, 2000, 32,
                                     memory_budget_bytes=4 * 2**20)
        payload = tuning.as_dict()
        assert payload["metric"] == "jaccard"
        assert payload["accumulating"] is True
        assert payload["tiles"] * payload["tile_rows"] >= 5000
        assert payload["memory_budget_bytes"] == 4 * 2**20


class TestWorkspace:
    def test_scratch_reused_not_reallocated(self):
        workspace = KernelWorkspace()
        first = workspace.scratch("a", (8, 8))
        second = workspace.scratch("a", (4, 4))
        assert second.base is first.base  # same backing buffer
        assert workspace.nbytes() == 8 * 8 * 8

    def test_scratch_grows_when_needed(self):
        workspace = KernelWorkspace()
        workspace.scratch("a", (4, 4))
        grown = workspace.scratch("a", (16, 16))
        assert grown.shape == (16, 16)

    def test_dtype_keys_are_distinct(self):
        workspace = KernelWorkspace()
        floats = workspace.scratch("a", (4,), dtype=np.float64)
        bools = workspace.scratch("a", (4,), dtype=bool)
        assert floats.dtype == np.float64 and bools.dtype == np.bool_

    def test_shared_workspace_is_process_wide(self):
        assert shared_workspace() is shared_workspace()

    def test_clear(self):
        workspace = KernelWorkspace()
        workspace.scratch("a", (4, 4))
        workspace.clear()
        assert workspace.nbytes() == 0


class TestDtypeFastPath:
    """float32 kernels agree with float64 within dtype-honest tolerances.

    float32 carries ~7 significant digits, and the cosine metric's arccos
    amplifies rounding near parallel vectors, so its envelope is looser
    than the accumulating metrics'.  The solver-agreement test is
    tie-aware: a float32 run may legitimately pick a different subset
    when two candidates are closer than float32 resolution, but the
    float64-evaluated objective of that pick must match the float64
    run's optimum.
    """

    ATOL = {"cosine": 1e-3}

    @pytest.mark.parametrize("metric_name", METRIC_NAMES)
    def test_float32_cross_matches_float64(self, metric_name):
        metric = get_metric(metric_name)
        rng = np.random.default_rng(29)
        left = _domain_points(metric_name, rng, 48, 9)
        right = _domain_points(metric_name, rng, 31, 9)
        exact = blocked_cross(metric, left, right)
        fast = blocked_cross(metric, left.astype(np.float32),
                             right.astype(np.float32))
        assert fast.dtype == np.float32, metric_name
        np.testing.assert_allclose(
            fast, exact, rtol=1e-4, atol=self.ATOL.get(metric_name, 1e-5))

    @pytest.mark.parametrize("metric_name", METRIC_NAMES)
    def test_float32_pairwise_matches_float64(self, metric_name):
        metric = get_metric(metric_name)
        rng = np.random.default_rng(31)
        points = _domain_points(metric_name, rng, 60, 7)
        exact = blocked_pairwise(metric, points)
        fast = blocked_pairwise(metric, points.astype(np.float32))
        assert fast.dtype == np.float32
        np.testing.assert_allclose(
            fast, exact, rtol=1e-4, atol=self.ATOL.get(metric_name, 1e-5))
        assert np.all(np.diag(fast) == 0.0)

    @pytest.mark.parametrize("objective_name", [
        "remote-edge", "remote-clique", "remote-cycle", "remote-star",
        "remote-tree", "remote-bipartition"])
    def test_float32_solver_selection_tie_aware(self, objective_name):
        from repro.diversity.objectives import get_objective
        from repro.diversity.sequential.registry import solve_on_matrix

        objective = get_objective(objective_name)
        metric = get_metric("euclidean")
        rng = np.random.default_rng(37)
        points = rng.normal(size=(80, 4))
        exact = blocked_pairwise(metric, points)
        fast = blocked_pairwise(metric, points.astype(np.float32))
        k = 6
        picked64 = solve_on_matrix(exact, k, objective)
        picked32 = solve_on_matrix(fast, k, objective)
        value64 = float(objective.value(exact[np.ix_(picked64, picked64)]))
        if sorted(picked64) != sorted(picked32):
            # Tie-explained: score the float32 pick on the float64 matrix.
            revalued = float(objective.value(
                exact[np.ix_(picked32, picked32)]))
            assert revalued == pytest.approx(value64, rel=1e-4), (
                objective_name, picked64, picked32)
        value32 = float(objective.value(fast[np.ix_(picked32, picked32)]))
        assert value32 == pytest.approx(value64, rel=1e-3)

    def test_tile_rows_scale_with_itemsize(self):
        """Half the itemsize -> ~double the tile rows from one budget."""
        metric = get_metric("manhattan")
        budget = 2**20
        rows64 = tile_rows_for(metric, 100_000, 4096, 16, budget,
                               itemsize=8)
        rows32 = tile_rows_for(metric, 100_000, 4096, 16, budget,
                               itemsize=4)
        assert rows32 == 2 * rows64

    def test_blocked_cross_budgets_by_output_itemsize(self):
        """A float32 call sees wider tiles than float64 under one budget
        (observable through the workspace's scratch sizes)."""
        metric = get_metric("manhattan")
        rng = np.random.default_rng(41)
        left, right = rng.normal(size=(64, 12)), rng.normal(size=(40, 12))
        ws64, ws32 = KernelWorkspace(), KernelWorkspace()
        temporaries = 1 + metric.scratch_arrays
        # 32 float64 rows of temporaries: above the MIN_TILE_ROWS clamp,
        # so the float32 call genuinely gets a 2x-wider tile.
        budget = temporaries * 40 * 8 * 32
        blocked_cross(metric, left, right, memory_budget_bytes=budget,
                      workspace=ws64)
        blocked_cross(metric, left.astype(np.float32),
                      right.astype(np.float32),
                      memory_budget_bytes=budget, workspace=ws32)
        # Same byte budget, half the itemsize: scratch covers 2x the rows
        # but the same bytes.
        assert ws32.nbytes() == ws64.nbytes()
