"""Tests for incremental index refresh and extended-index persistence.

The contract under test is the incremental form of composability
(Definition 2): ``CoresetIndex.extend`` streams new points through the
batched SMM path per rung and merges by union (re-reducing oversized
rungs), and the result must clear the *same* coreset-quality gates as a
cold rebuild on the concatenated dataset — while never running the
MapReduce build.  Persistence of extended indexes (format version 2)
round-trips bit-exactly and still reads PR 3-era version-1 files.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.coresets.composable import merge_coresets, practical_coreset_size
from repro.coresets.generalized import GeneralizedCoreset
from repro.datasets.synthetic import gaussian_clusters, sphere_shell
from repro.diversity.objectives import list_objectives
from repro.diversity.sequential.registry import solve_sequential
from repro.exceptions import ValidationError
from repro.metricspace.points import PointSet
from repro.service import (
    INDEX_FORMAT_VERSION,
    DiversityService,
    Query,
    build_coreset_index,
    load_index,
    save_index,
)
from repro.streaming import stream_coreset

#: One quality gate for cold-built and extended indexes alike — the
#: "same gates" clause of the refresh acceptance criterion.
QUALITY_GATE = 0.8


@pytest.fixture(scope="module")
def base():
    return sphere_shell(1500, 8, dim=3, seed=5)


@pytest.fixture(scope="module")
def growth():
    return sphere_shell(700, 8, dim=3, seed=9)


@pytest.fixture(scope="module")
def base_index(base):
    return build_coreset_index(base, k_max=8, k_min=4, seed=0)


@pytest.fixture(scope="module")
def extended(base_index, growth):
    return base_index.extend(growth)


# -- stream_coreset (the batched SMM ingestion kernel) ------------------------

class TestStreamCoreset:
    def test_matches_sketch_family(self, growth):
        gmm = stream_coreset(growth, k=4, k_prime=16, objective="remote-edge")
        ext = stream_coreset(growth, k=4, k_prime=16,
                             objective="remote-clique")
        assert isinstance(gmm, PointSet) and isinstance(ext, PointSet)
        assert len(gmm) >= 4
        # SMM-EXT retains delegates, so the injective family is larger.
        assert len(ext) >= len(gmm)

    def test_batched_equals_per_point(self, growth):
        batched = stream_coreset(growth, k=4, k_prime=16, batch_size=64)
        pointwise = stream_coreset(growth, k=4, k_prime=16, batch_size=1)
        assert batched.points.tobytes() == pointwise.points.tobytes()

    def test_accepts_raw_arrays(self, rng):
        data = rng.normal(size=(200, 3))
        coreset = stream_coreset(data, k=4, k_prime=8)
        assert isinstance(coreset, PointSet)
        assert coreset.metric.name == "euclidean"

    def test_tiny_input_is_its_own_coreset(self):
        data = np.asarray([[0.0, 0.0], [1.0, 1.0], [2.0, 0.0]])
        coreset = stream_coreset(data, k=2, k_prime=8)
        assert len(coreset) == 3


# -- merge_coresets -----------------------------------------------------------

class TestMergeCoresets:
    def test_union_below_threshold(self, rng):
        a = PointSet(rng.normal(size=(10, 2)))
        b = PointSet(rng.normal(size=(6, 2)))
        merged = merge_coresets([a, b], k=2, k_prime=8, objective="remote-edge",
                                max_points=32)
        assert len(merged) == 16  # plain union, no reduction

    def test_reduces_when_oversized(self, rng):
        a = PointSet(rng.normal(size=(40, 2)))
        b = PointSet(rng.normal(size=(40, 2)))
        merged = merge_coresets([a, b], k=2, k_prime=16,
                                objective="remote-edge", max_points=32)
        assert len(merged) == 16  # reduced to the construction's k'

    def test_rejects_generalized_coresets(self):
        generalized = GeneralizedCoreset(
            points=np.zeros((2, 2)), multiplicities=np.ones(2, dtype=np.int64),
            metric="euclidean")
        with pytest.raises(ValueError, match="point-subset"):
            merge_coresets([generalized], k=2, k_prime=4,
                           objective="remote-edge")


# -- CoresetIndex.extend ------------------------------------------------------

class TestExtend:
    def test_returns_new_index_and_updates_provenance(self, base_index,
                                                      extended, growth):
        assert extended is not base_index
        assert extended.source["n"] == base_index.source["n"] + len(growth)
        assert extended.build_calls == base_index.build_calls
        history = extended.extra["refreshes"]
        assert len(history) == 1
        assert history[0]["points_added"] == len(growth)
        assert history[0]["sketch_builds"] == len(base_index.all_rungs())
        # The original index is untouched.
        assert "refreshes" not in base_index.extra

    def test_rung_geometry_preserved(self, base_index, extended):
        assert [r.key for r in extended.all_rungs()] == \
            [r.key for r in base_index.all_rungs()]
        for rung in extended.all_rungs():
            assert len(rung.coreset) >= rung.k_cap

    def test_repeated_extends_stay_bounded(self, base_index):
        parallelism = base_index.ladder["parallelism"]
        index = base_index
        for seed in (11, 12, 13):
            index = index.extend(sphere_shell(500, 8, dim=3, seed=seed))
        for rung in index.all_rungs():
            per_partition = rung.k_prime
            if rung.family == "gmm-ext":
                per_partition *= 1 + rung.k_cap
            assert len(rung.coreset) <= parallelism * per_partition + \
                rung.k_prime * (1 + rung.k_cap)
        assert len(index.extra["refreshes"]) == 3

    def test_validation_errors(self, base_index, growth):
        with pytest.raises(ValidationError, match="non-empty"):
            base_index.extend(growth.points)  # raw array, not a PointSet
        cosine = PointSet(np.abs(growth.points) + 0.1, metric="cosine")
        with pytest.raises(ValidationError, match="metric mismatch"):
            base_index.extend(cosine)
        flat = PointSet(growth.points[:, :2], metric="euclidean")
        with pytest.raises(ValidationError, match="dimension mismatch"):
            base_index.extend(flat)

    def test_extend_meets_cold_rebuild_quality_gates(self, base, growth,
                                                     base_index, extended):
        # The acceptance criterion: extend-then-query must clear the same
        # coreset-quality gates as a cold rebuild on the concatenation.
        concat = base.concat(growth)
        cold = build_coreset_index(concat, k_max=8, k_min=4, seed=0)
        cold_service = DiversityService(cold)
        warm_service = DiversityService(extended)
        for objective in list_objectives():
            for k in (4, 8):
                _, reference = solve_sequential(concat, k, objective)
                cold_ratio = cold_service.query(objective, k).value / reference
                warm_ratio = warm_service.query(objective, k).value / reference
                assert cold_ratio >= QUALITY_GATE, \
                    f"cold rebuild below gate: {objective} k={k} {cold_ratio:.3f}"
                assert warm_ratio >= QUALITY_GATE, \
                    f"extended index below gate: {objective} k={k} {warm_ratio:.3f}"


# -- DiversityService.refresh -------------------------------------------------

class TestServiceRefresh:
    def test_refresh_swaps_index_and_invalidates_caches(self, base_index,
                                                        growth):
        service = DiversityService(base_index)
        before = service.query("remote-edge", 4)
        assert service.query("remote-edge", 4).cached
        refreshed = service.refresh(growth)
        assert service.index is refreshed is not base_index
        stats = service.stats()
        assert stats["epochs"]["refreshes"] == 1 and stats["epochs"]["current"] == 1
        assert stats["matrices"]["local"]["cached"] == 0
        after = service.query("remote-edge", 4)
        assert not after.cached  # caches were dropped with the old epoch
        assert after.value >= 0 and before.value >= 0
        assert service.build_calls == 0  # refresh is not a build

    def test_refresh_swaps_caches_and_carries_stats(self, base_index,
                                                    growth):
        # refresh replaces both caches (in-flight old-epoch queries keep
        # their snapshotted objects, which die with them) but the
        # lifetime counters carry over to the successors.
        service = DiversityService(base_index)
        service.query("remote-edge", 4)
        service.query("remote-edge", 4)  # one LRU hit
        before_matrices = service.stats()["matrices"]["local"]
        before_cache = service.stats()["caches"]["results"]
        assert before_matrices["computes"] == 1
        assert before_cache["hits"] == 1
        old_matrices, old_results = service._matrices, service.cache
        service.refresh(growth)
        assert service._matrices is not old_matrices
        assert service.cache is not old_results
        assert len(service.cache) == 0  # empty successor, live entries safe
        after_matrices = service.stats()["matrices"]["local"]
        after_cache = service.stats()["caches"]["results"]
        assert after_matrices["computes"] == before_matrices["computes"]
        assert after_matrices["cached"] == 0
        assert after_cache["hits"] == before_cache["hits"]
        assert after_cache["misses"] == before_cache["misses"]
        assert service._matrices.budget_bytes == old_matrices.budget_bytes
        assert service.cache.capacity == old_results.capacity

    def test_refresh_on_lazy_service_builds_once(self, base, growth):
        service = DiversityService(points=base, k_max=8, k_min=8, seed=0)
        service.refresh(growth)
        builds = service.build_calls
        assert builds > 0  # the lazy cold build, counted as usual
        service.query("remote-edge", 4)
        assert service.build_calls == builds

    def test_concurrent_queries_during_refresh_are_safe(self, base_index,
                                                        growth):
        import threading

        service = DiversityService(base_index)
        errors: list[Exception] = []
        stop = threading.Event()

        def hammer():
            try:
                while not stop.is_set():
                    service.query_concurrent(
                        [Query("remote-edge", 4), Query("remote-clique", 5)],
                        max_workers=2)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            for _ in range(3):
                service.refresh(growth.subset(range(100)))
        finally:
            stop.set()
            thread.join()
        assert not errors
        assert service.stats()["epochs"]["current"] == 3


# -- persistence of extended indexes ------------------------------------------

class TestExtendedPersistence:
    def test_round_trip_is_bit_identical_with_history(self, extended,
                                                      tmp_path):
        path = tmp_path / "ext_idx"
        save_index(extended, path)
        metadata = json.loads((tmp_path / "ext_idx.json").read_text())
        assert metadata["format_version"] == INDEX_FORMAT_VERSION == 2
        loaded = load_index(path)
        assert loaded.extra == extended.extra
        assert loaded.source == extended.source
        for ours, theirs in zip(extended.all_rungs(), loaded.all_rungs()):
            assert ours.key == theirs.key
            assert ours.coreset.points.tobytes() == \
                theirs.coreset.points.tobytes()

    def test_refresh_persist_load_query_round_trip(self, base_index, growth,
                                                   tmp_path):
        service = DiversityService(base_index)
        service.refresh(growth)
        path = tmp_path / "svc_idx"
        service.save(path)
        warm = DiversityService.from_file(path)
        assert warm.build_calls == 0
        for objective, k in (("remote-edge", 6), ("remote-tree", 5)):
            ours = service.query(objective, k)
            theirs = warm.query(objective, k)
            assert ours.value == theirs.value
            assert np.array_equal(ours.indices, theirs.indices)

    def test_in_place_resave_is_atomic_and_clean(self, base_index, extended,
                                                 tmp_path):
        # The refresh default overwrites the index in place; writes go
        # through temp files + os.replace, so no temp residue remains
        # and the result is the new index in full.
        path = tmp_path / "idx"
        save_index(base_index, path)
        save_index(extended, path)
        leftovers = [p.name for p in tmp_path.iterdir() if ".tmp" in p.name]
        assert leftovers == []
        loaded = load_index(path)
        assert loaded.extra == extended.extra
        assert [r.key for r in loaded.all_rungs()] == \
            [r.key for r in extended.all_rungs()]

    def test_loads_version_1_files(self, base_index, tmp_path):
        # A PR 3-era file: version 1, no "extra" block.
        path = tmp_path / "v1_idx"
        save_index(base_index, path)
        sidecar = tmp_path / "v1_idx.json"
        metadata = json.loads(sidecar.read_text())
        metadata["format_version"] = 1
        del metadata["extra"]
        sidecar.write_text(json.dumps(metadata))
        loaded = load_index(path)
        assert loaded.extra == {}
        assert loaded.seed == base_index.seed
        service = DiversityService(loaded)
        assert service.query("remote-edge", 4).value == \
            DiversityService(base_index).query("remote-edge", 4).value

    def test_unknown_version_rejected(self, base_index, tmp_path):
        path = tmp_path / "vx_idx"
        save_index(base_index, path)
        sidecar = tmp_path / "vx_idx.json"
        metadata = json.loads(sidecar.read_text())
        metadata["format_version"] = 99
        sidecar.write_text(json.dumps(metadata))
        with pytest.raises(ValidationError, match="format version"):
            load_index(path)


# -- routing-dimension re-estimation ------------------------------------------

class TestDimensionReestimate:
    """``extend`` must refresh the routing dimension after >= 2x growth.

    The build-time doubling-dimension estimate drives
    ``practical_coreset_size`` forever after; a distribution shift (here:
    a near-1-d line swamped by a 3-d cube) must not leave tight-eps
    queries routed by the stale low-dimensional estimate.
    """

    @pytest.fixture(scope="class")
    def line_index(self):
        rng = np.random.default_rng(0)
        t = rng.uniform(0.0, 100.0, size=(900, 1))
        line = np.hstack([t, 1e-3 * rng.normal(size=(900, 2))])
        points = PointSet(line, metric="euclidean")
        return points, build_coreset_index(points, k_max=8, k_min=4, seed=0)

    @staticmethod
    def _shifted_cube(n: int, seed: int) -> PointSet:
        # Scale-matched to the line's 0..100 extent: the doubling
        # estimator works at the data's own scale, so a unit cube would
        # just look like one tight cluster on the line's yardstick.
        rng = np.random.default_rng(seed)
        return PointSet(100.0 * rng.uniform(size=(n, 3)))

    def test_distribution_shift_reestimates_and_reroutes(self, line_index):
        points, index = line_index
        shifted = self._shifted_cube(1000, seed=3)
        # 900 -> 1900 points: past the 2x-growth trigger.
        extended = index.extend(shifted)
        assert extended.dimension_estimate > index.dimension_estimate + 0.5
        history = extended.extra["dimension_reestimates"]
        assert len(history) == 1
        assert history[0]["previous"] == index.dimension_estimate
        assert history[0]["estimate"] == extended.dimension_estimate
        assert history[0]["n"] == 1900
        assert extended.extra["dim_estimate_n"] == 1900
        # The stale estimate under-routed tight-eps queries; with the
        # refreshed dimension the same query demands a bigger kernel and
        # climbs the ladder.
        stale = practical_coreset_size(2, 0.4, index.dimension_estimate,
                                       "remote-edge")
        fresh = practical_coreset_size(2, 0.4, extended.dimension_estimate,
                                       "remote-edge")
        assert fresh > stale
        assert extended.route("remote-edge", 2, 0.4).k_prime \
            > index.route("remote-edge", 2, 0.4).k_prime

    def test_below_threshold_keeps_estimate(self, line_index):
        points, index = line_index
        small = self._shifted_cube(300, seed=4)  # 900 -> 1200 < 2x
        extended = index.extend(small)
        assert extended.dimension_estimate == index.dimension_estimate
        assert "dimension_reestimates" not in extended.extra

    def test_growth_baseline_accumulates_across_extends(self, line_index):
        points, index = line_index
        first = index.extend(self._shifted_cube(300, seed=5))   # 1200
        assert "dimension_reestimates" not in first.extra
        second = first.extend(self._shifted_cube(700, seed=6))  # 1900 >= 2x
        assert len(second.extra["dimension_reestimates"]) == 1
        # The next trigger point is 2x the size at *this* estimate.
        third = second.extend(self._shifted_cube(400, seed=8))  # 2300 < 2x
        assert len(third.extra["dimension_reestimates"]) == 1

    def test_reestimated_index_round_trips(self, line_index, tmp_path):
        points, index = line_index
        extended = index.extend(self._shifted_cube(1000, seed=3))
        path = tmp_path / "reest"
        save_index(extended, path)
        loaded = load_index(path)
        assert loaded.dimension_estimate == extended.dimension_estimate
        assert loaded.extra["dimension_reestimates"] \
            == extended.extra["dimension_reestimates"]


# -- quality gate sanity on a second data family ------------------------------

def test_extend_quality_on_clustered_data():
    base = gaussian_clusters(1200, centers=5, dim=3, seed=2)
    growth = gaussian_clusters(600, centers=5, dim=3, seed=7)
    index = build_coreset_index(base, k_max=8, k_min=4, seed=0)
    extended = index.extend(growth)
    concat = base.concat(growth)
    service = DiversityService(extended)
    for objective in ("remote-edge", "remote-clique"):
        _, reference = solve_sequential(concat, 6, objective)
        ratio = service.query(objective, 6).value / reference
        assert ratio >= QUALITY_GATE, f"{objective}: {ratio:.3f}"
