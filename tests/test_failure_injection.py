"""Failure-injection and edge-case tests.

Production-quality data systems must fail loudly and early on malformed
input and degenerate configurations.  These tests feed the stack NaNs,
dimension mismatches, zero-diameter data, single points, and hostile
arrival orders, and assert that every failure is a typed library error (or
a graceful degenerate result) rather than a numpy traceback from deep
inside a kernel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coresets.gmm import gmm
from repro.coresets.smm import SMM
from repro.coresets.smm_ext import SMMExt
from repro.diversity.sequential import solve_sequential
from repro.exceptions import ReproError, ValidationError
from repro.mapreduce.algorithm import MRDiversityMaximizer
from repro.metricspace.points import PointSet
from repro.streaming.algorithm import StreamingDiversityMaximizer
from repro.streaming.stream import ArrayStream


class TestMalformedInput:
    def test_nan_points_rejected_at_boundary(self):
        data = np.asarray([[0.0, 1.0], [np.nan, 2.0]])
        with pytest.raises(ValidationError):
            PointSet(data)

    def test_inf_points_rejected(self):
        with pytest.raises(ValidationError):
            PointSet(np.asarray([[np.inf, 0.0]]))

    def test_nan_in_stream_source_rejected(self):
        with pytest.raises(ValidationError):
            ArrayStream(np.asarray([[0.0], [np.nan]]))

    def test_empty_input_rejected(self):
        with pytest.raises(ValidationError):
            PointSet(np.empty((0, 3)))

    def test_all_errors_are_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            PointSet(np.empty((0, 3)))


class TestDegenerateGeometry:
    def test_all_identical_points_gmm(self):
        points = PointSet(np.zeros((20, 3)))
        result = gmm(points, 5)
        assert len(result.indices) == 5
        assert result.range == 0.0

    def test_all_identical_points_streaming(self):
        """A zero-diameter stream must terminate and return k points."""
        algo = StreamingDiversityMaximizer(k=3, k_prime=6,
                                           objective="remote-edge")
        result = algo.run(ArrayStream(np.zeros((50, 2))))
        assert result.k == 3
        assert result.value == 0.0

    def test_all_identical_points_mapreduce(self):
        points = PointSet(np.ones((100, 2)))
        algo = MRDiversityMaximizer(k=3, k_prime=6, objective="remote-clique",
                                    parallelism=4, seed=0)
        result = algo.run(points)
        assert result.k == 3
        assert result.value == 0.0

    def test_single_point_sequential(self):
        points = PointSet(np.asarray([[1.0, 2.0]]))
        indices, value = solve_sequential(points, 1, "remote-edge")
        assert list(indices) == [0]
        assert value == 0.0

    def test_two_point_stream(self):
        sketch = SMM(k=2, k_prime=4)
        sketch.process_batch(np.asarray([[0.0], [7.0]]))
        assert len(sketch.finalize()) == 2

    def test_near_duplicate_flood(self, rng):
        """A stream of near-duplicates (1e-12 apart) must not produce
        thousands of phases or lose the guarantee."""
        base = rng.random((1, 3))
        data = np.vstack([base + 1e-12 * rng.normal(size=(200, 3)),
                          base + 5.0])
        sketch = SMM(k=2, k_prime=4)
        sketch.process_batch(data)
        coreset = sketch.finalize()
        assert len(coreset) >= 2
        assert float(coreset.pairwise().max()) > 4.0


class TestHostileArrivalOrders:
    @pytest.mark.parametrize("order", ["sorted", "reverse", "interleaved"])
    def test_streaming_guarantee_for_structured_orders(self, order, rng):
        bulk = rng.normal(scale=0.2, size=(300, 1))
        far = np.asarray([[50.0], [-50.0], [100.0]])
        data = np.vstack([bulk, far])
        if order == "sorted":
            data = data[np.argsort(data[:, 0])]
        elif order == "reverse":
            data = data[np.argsort(data[:, 0])[::-1]]
        else:
            idx = np.argsort(data[:, 0])
            half = len(idx) // 2
            interleaved = np.empty_like(idx)
            interleaved[0::2] = idx[:half + len(idx) % 2]
            interleaved[1::2] = idx[half + len(idx) % 2:][::-1]
            data = data[interleaved]
        sketch = SMMExt(k=3, k_prime=12)
        sketch.process_batch(data)
        coreset = sketch.finalize()
        _, value = solve_sequential(coreset, 3, "remote-edge")
        # Optimal {-50, 50, 100}: min gap 50; the guarantee allows ~4x slack.
        assert value >= 50.0 / 4.0

    def test_diverse_points_first_then_noise(self, rng):
        """All far points arrive before any bulk point: merges must not
        evict them without keeping delegates in range."""
        far = 20.0 * np.asarray([[1.0, 0], [-1, 0], [0, 1], [0, -1]])
        bulk = rng.normal(scale=0.1, size=(400, 2))
        data = np.vstack([far, bulk])
        sketch = SMM(k=4, k_prime=8)
        sketch.process_batch(data)
        _, value = solve_sequential(sketch.finalize(), 4, "remote-edge")
        assert value >= 10.0


class TestConfigurationErrors:
    def test_dimension_mismatch_in_stream_raises(self):
        sketch = SMM(k=2, k_prime=4)
        sketch.process(np.asarray([0.0, 1.0]))
        with pytest.raises(Exception):
            sketch.process(np.asarray([0.0, 1.0, 2.0]))

    def test_k_larger_than_dataset_mapreduce(self, rng):
        points = PointSet(rng.random((6, 2)))
        algo = MRDiversityMaximizer(k=10, k_prime=12, objective="remote-edge",
                                    parallelism=2, seed=0)
        with pytest.raises(ReproError):
            algo.run(points)

    def test_parallelism_exceeding_points(self, rng):
        points = PointSet(rng.random((3, 2)))
        algo = MRDiversityMaximizer(k=1, k_prime=1, objective="remote-edge",
                                    parallelism=8, seed=0)
        with pytest.raises(ValidationError):
            algo.run(points)
