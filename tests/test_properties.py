"""Cross-module property-based tests (hypothesis).

These check the paper's structural invariants on randomized instances:
core-set containment, composability under arbitrary partitions, streaming
order-insensitivity of guarantees, and the Lemma 1/2 proxy conditions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.coresets.characterization import (
    coreset_range,
    proxy_distance_bound,
)
from repro.coresets.composable import build_composable_coreset, union_coresets
from repro.coresets.gmm import gmm
from repro.coresets.smm import SMM
from repro.diversity.exact import divk_exact
from repro.diversity.objectives import get_objective
from repro.diversity.sequential import solve_sequential
from repro.metricspace.points import PointSet

SETTINGS = settings(max_examples=15, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


@st.composite
def point_clouds(draw, min_n=8, max_n=24, dim=2):
    n = draw(st.integers(min_n, max_n))
    seed = draw(st.integers(0, 10**6))
    rng = np.random.default_rng(seed)
    return PointSet(rng.random((n, dim)) * 10.0)


@SETTINGS
@given(points=point_clouds(), k=st.integers(2, 4))
def test_gmm_coreset_contains_near_optimal_edge_solution(points, k):
    """div_k(GMM core-set) >= div_k(S)/2 even with modest k' (remote-edge)."""
    k_prime = min(len(points), 4 * k)
    coreset = points.subset(gmm(points, k_prime).indices)
    full = divk_exact(points, k, "remote-edge")
    reduced = divk_exact(coreset, k, "remote-edge")
    assert reduced >= full / 2.0 - 1e-9


@SETTINGS
@given(points=point_clouds(min_n=12), parts=st.integers(2, 4))
def test_composability_under_arbitrary_partition(points, parts):
    """Definition 2: for ANY partition, the union of partition core-sets
    preserves a constant fraction of div_k (remote-edge, k=2)."""
    k, k_prime = 2, 6
    order = np.arange(len(points))
    chunks = np.array_split(order, parts)
    coresets = [
        build_composable_coreset(points.subset(chunk), k, k_prime, "remote-edge")
        for chunk in chunks if len(chunk) > 0
    ]
    union = union_coresets(coresets)
    full = divk_exact(points, k, "remote-edge")
    reduced = divk_exact(union, k, "remote-edge")
    assert reduced >= full / 2.0 - 1e-9


@SETTINGS
@given(points=point_clouds(min_n=10), k=st.integers(2, 3))
def test_proxy_distance_bounded_by_gmm_range(points, k):
    """Lemma 5's mechanism: every point (hence every optimal solution)
    has a proxy within the GMM core-set's range."""
    k_prime = min(len(points), 4 * k)
    result = gmm(points, k_prime)
    coreset = points.subset(result.indices)
    _, optimum_subset = _exact_subset(points, k)
    bound = proxy_distance_bound(points, coreset, optimum_subset)
    assert bound <= coreset_range(points, result.indices) + 1e-9


def _exact_subset(points, k):
    from repro.diversity.exact import divk_exact_subset
    value, subset = divk_exact_subset(points, k, "remote-edge")
    return value, np.asarray(subset)


@SETTINGS
@given(points=point_clouds(min_n=16), k=st.integers(2, 3),
       order_seed=st.integers(0, 100))
def test_smm_guarantee_is_order_insensitive(points, k, order_seed):
    """The streaming guarantee must hold for EVERY arrival order."""
    order = np.random.default_rng(order_seed).permutation(len(points))
    sketch = SMM(k=k, k_prime=min(4 * k, len(points) - 1))
    for row in points.points[order]:
        sketch.process(row)
    coreset = sketch.finalize()
    full = divk_exact(points, k, "remote-edge")
    _, achieved = solve_sequential(coreset, k, "remote-edge")
    # SMM range bound (8-approx doubling) + GMM final solve: on these tiny
    # instances the compounded factor stays within ~4.
    assert achieved >= full / 4.0 - 1e-9


@SETTINGS
@given(points=point_clouds(min_n=10, max_n=16), k=st.integers(2, 3))
def test_sequential_solution_value_consistency(points, k):
    """solve_sequential's reported value equals re-evaluating its subset."""
    for objective_name in ("remote-edge", "remote-clique", "remote-tree"):
        objective = get_objective(objective_name)
        indices, value = solve_sequential(points, k, objective)
        dist = points.pairwise()
        recomputed = objective.value(dist[np.ix_(indices, indices)])
        assert value == pytest.approx(recomputed, rel=1e-9)


@SETTINGS
@given(points=point_clouds(min_n=10, max_n=18))
def test_diversity_monotone_under_superset_optimum(points):
    """div_k over a superset ground set can only be larger (k=2, edge)."""
    half = points.subset(range(len(points) // 2))
    assert divk_exact(points, 2, "remote-edge") >= \
        divk_exact(half, 2, "remote-edge") - 1e-12
