"""Tests for the MapReduce engine, partitioners, and end-to-end algorithms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import sphere_shell
from repro.exceptions import MemoryBudgetExceededError, ValidationError
from repro.experiments.reference import reference_value
from repro.mapreduce.algorithm import MRDiversityMaximizer, randomized_delegate_cap
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.partition import (
    adversarial_partition,
    chunk_partition,
    partition_points,
    random_partition,
)
from repro.metricspace.points import PointSet


class TestEngine:
    def test_round_applies_reducer(self):
        engine = MapReduceEngine()
        outputs = engine.run_round([[1, 2], [3, 4, 5]], lambda xs: [sum(xs)])
        assert outputs == [[3], [12]]

    def test_stats_recorded(self):
        engine = MapReduceEngine()
        engine.run_round([[1, 2], [3, 4, 5]], lambda xs: xs[:1])
        stats = engine.stats.rounds[0]
        assert stats.num_reducers == 2
        assert stats.total_memory_points == 5
        assert stats.local_memory_points == 4  # input 3 + output 1
        assert engine.stats.num_rounds == 1

    def test_local_memory_limit_enforced(self):
        engine = MapReduceEngine(local_memory_limit=3)
        with pytest.raises(MemoryBudgetExceededError):
            engine.run_round([[1, 2, 3, 4]], lambda xs: xs)

    def test_empty_round_rejected(self):
        with pytest.raises(ValidationError):
            MapReduceEngine().run_round([], lambda xs: xs)

    def test_bad_executor_rejected(self):
        with pytest.raises(ValidationError):
            MapReduceEngine(executor="threads")

    def test_bad_parallelism_rejected(self):
        with pytest.raises(ValidationError):
            MapReduceEngine(parallelism=0)


class TestPartitioners:
    def test_chunk_covers_everything(self, medium_points):
        parts = chunk_partition(medium_points, 4)
        assert sum(len(p) for p in parts) == len(medium_points)

    def test_random_is_a_partition(self, medium_points):
        parts = random_partition(medium_points, 5, seed=0)
        assert sum(len(p) for p in parts) == len(medium_points)
        stacked = np.vstack([p.points for p in parts])
        assert np.array_equal(
            np.sort(stacked, axis=0), np.sort(medium_points.points, axis=0)
        )

    def test_random_is_seed_deterministic(self, medium_points):
        a = random_partition(medium_points, 3, seed=7)
        b = random_partition(medium_points, 3, seed=7)
        assert all(np.array_equal(x.points, y.points) for x, y in zip(a, b))

    def test_adversarial_slices_by_principal_axis(self, rng):
        # Elongated cloud along x: slabs should have disjoint x-ranges.
        data = np.column_stack([np.linspace(0, 100, 60), rng.random(60)])
        parts = adversarial_partition(PointSet(data[rng.permutation(60)]), 3)
        ranges = sorted((p.points[:, 0].min(), p.points[:, 0].max()) for p in parts)
        for (lo1, hi1), (lo2, hi2) in zip(ranges, ranges[1:]):
            assert hi1 <= lo2 + 1e-9

    def test_strategy_dispatch(self, medium_points):
        for strategy in ("random", "chunk", "adversarial"):
            parts = partition_points(medium_points, 4, strategy=strategy, seed=0)
            assert len(parts) == 4
        with pytest.raises(ValidationError):
            partition_points(medium_points, 4, strategy="zigzag")

    def test_too_many_parts_rejected(self, small_points):
        with pytest.raises(ValidationError):
            chunk_partition(small_points, len(small_points) + 1)


class TestTwoRound:
    @pytest.mark.parametrize("objective", [
        "remote-edge", "remote-clique", "remote-star",
        "remote-bipartition", "remote-tree", "remote-cycle",
    ])
    def test_all_objectives(self, objective):
        pts = sphere_shell(400, 4, dim=3, seed=11)
        algo = MRDiversityMaximizer(k=4, k_prime=8, objective=objective,
                                    parallelism=4, seed=0)
        result = algo.run(pts)
        assert result.k == 4
        assert result.rounds == 2
        assert result.value > 0.0
        assert result.stats.num_rounds == 2

    def test_quality_close_to_reference(self):
        pts = sphere_shell(3000, 8, dim=3, seed=13)
        algo = MRDiversityMaximizer(k=8, k_prime=64, objective="remote-edge",
                                    parallelism=4, seed=0)
        result = algo.run(pts)
        reference = reference_value(pts, 8, "remote-edge")
        assert reference / result.value <= 1.3

    def test_local_memory_sublinear(self):
        """M_L is far below n for the 2-round algorithm (Theorem 6)."""
        pts = sphere_shell(4000, 8, dim=3, seed=17)
        algo = MRDiversityMaximizer(k=8, k_prime=16, objective="remote-edge",
                                    parallelism=8, seed=0)
        result = algo.run(pts)
        assert result.stats.max_local_memory_points < len(pts)
        # Round 1 local memory ~ n/l + k'.
        round1 = result.stats.rounds[0]
        assert round1.local_memory_points <= len(pts) // 8 + 16 + 1

    def test_randomized_mode_caps_delegates(self):
        pts = sphere_shell(1000, 8, dim=3, seed=19)
        algo = MRDiversityMaximizer(k=8, k_prime=16, objective="remote-clique",
                                    parallelism=4, seed=0)
        plain = algo.run(pts)
        randomized = algo.run(pts, randomized=True)
        cap = randomized.extra["delegate_cap"]
        assert cap is not None and cap <= 8
        assert randomized.coreset_size <= plain.coreset_size
        assert randomized.value >= plain.value / 1.5

    def test_coreset_size_bound(self):
        pts = sphere_shell(500, 4, dim=3, seed=23)
        algo = MRDiversityMaximizer(k=4, k_prime=8, objective="remote-edge",
                                    parallelism=4, seed=0)
        result = algo.run(pts)
        assert result.coreset_size <= 4 * 8  # l * k'

    def test_k_prime_lt_k_rejected(self):
        with pytest.raises(ValidationError):
            MRDiversityMaximizer(k=8, k_prime=4, objective="remote-edge")


class TestThreeRound:
    def test_runs_and_reports_three_rounds(self):
        pts = sphere_shell(800, 4, dim=3, seed=29)
        algo = MRDiversityMaximizer(k=4, k_prime=8, objective="remote-clique",
                                    parallelism=4, seed=0)
        result = algo.run_three_round(pts)
        assert result.rounds == 3
        assert result.k == 4
        assert result.stats.num_rounds == 3

    def test_memory_saving_vs_two_round(self):
        """The aggregated generalized core-set is ~k times smaller."""
        pts = sphere_shell(2000, 8, dim=3, seed=31)
        algo = MRDiversityMaximizer(k=8, k_prime=16, objective="remote-clique",
                                    parallelism=4, seed=0)
        two = algo.run(pts)
        three = algo.run_three_round(pts)
        assert three.coreset_size < two.coreset_size
        assert three.value >= two.value / 2.0

    def test_rejects_non_injective(self):
        algo = MRDiversityMaximizer(k=4, k_prime=8, objective="remote-edge",
                                    parallelism=2)
        with pytest.raises(ValidationError):
            algo.run_three_round(sphere_shell(100, 4, seed=0))


class TestMultiRound:
    def test_shrinks_to_memory_target(self):
        pts = sphere_shell(4000, 4, dim=3, seed=37)
        algo = MRDiversityMaximizer(k=4, k_prime=8, objective="remote-edge",
                                    parallelism=4, seed=0)
        result = algo.run_multi_round(pts, memory_target=100)
        assert result.extra["levels"] >= 2
        assert result.coreset_size <= 100
        assert result.k == 4

    def test_quality_survives_recursion(self):
        pts = sphere_shell(4000, 8, dim=3, seed=41)
        algo = MRDiversityMaximizer(k=8, k_prime=32, objective="remote-edge",
                                    parallelism=4, seed=0)
        result = algo.run_multi_round(pts, memory_target=400)
        reference = reference_value(pts, 8, "remote-edge")
        assert reference / result.value <= 1.5

    def test_memory_target_too_small_rejected(self):
        pts = sphere_shell(100, 4, seed=0)
        algo = MRDiversityMaximizer(k=4, k_prime=8, objective="remote-edge")
        with pytest.raises(ValidationError):
            algo.run_multi_round(pts, memory_target=4)


class TestProcessExecutor:
    def test_process_pool_matches_serial_quality(self):
        pts = sphere_shell(600, 4, dim=3, seed=43)
        serial = MRDiversityMaximizer(k=4, k_prime=8, objective="remote-edge",
                                      parallelism=2, seed=5, executor="serial")
        parallel = MRDiversityMaximizer(k=4, k_prime=8, objective="remote-edge",
                                        parallelism=2, seed=5,
                                        executor="process")
        r_serial = serial.run(pts)
        r_parallel = parallel.run(pts)
        # Same seed -> same partitions -> identical deterministic core-sets.
        assert r_parallel.value == pytest.approx(r_serial.value)


class TestRandomizedCap:
    def test_cap_bounds(self):
        assert randomized_delegate_cap(10**6, 128, 16) <= 128
        assert randomized_delegate_cap(100, 4, 2) >= 1
        assert randomized_delegate_cap(1, 4, 2) == 1

    def test_cap_grows_with_k_over_l(self):
        small = randomized_delegate_cap(10**6, 64, 64)
        large = randomized_delegate_cap(10**6, 4096, 4)
        assert large >= small
