"""Tests for the MapReduce engine, partitioners, and end-to-end algorithms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import sphere_shell
from repro.exceptions import MemoryBudgetExceededError, ValidationError
from repro.experiments.reference import reference_value
from repro.mapreduce.algorithm import MRDiversityMaximizer, randomized_delegate_cap
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.partition import (
    adversarial_partition,
    chunk_partition,
    materialize_selector,
    partition_points,
    partition_selectors,
    random_partition,
)
from repro.mapreduce.shm import SharedDataset
from repro.metricspace.points import PointSet


class TestEngine:
    def test_round_applies_reducer(self):
        engine = MapReduceEngine()
        outputs = engine.run_round([[1, 2], [3, 4, 5]], lambda xs: [sum(xs)])
        assert outputs == [[3], [12]]

    def test_stats_recorded(self):
        engine = MapReduceEngine()
        engine.run_round([[1, 2], [3, 4, 5]], lambda xs: xs[:1])
        stats = engine.stats.rounds[0]
        assert stats.num_reducers == 2
        assert stats.total_memory_points == 5
        assert stats.local_memory_points == 4  # input 3 + output 1
        assert engine.stats.num_rounds == 1

    def test_local_memory_limit_enforced(self):
        engine = MapReduceEngine(local_memory_limit=3)
        with pytest.raises(MemoryBudgetExceededError):
            engine.run_round([[1, 2, 3, 4]], lambda xs: xs)

    def test_empty_round_rejected(self):
        with pytest.raises(ValidationError):
            MapReduceEngine().run_round([], lambda xs: xs)

    def test_bad_executor_rejected(self):
        with pytest.raises(ValidationError):
            MapReduceEngine(executor="threads")

    def test_bad_parallelism_rejected(self):
        with pytest.raises(ValidationError):
            MapReduceEngine(parallelism=0)

    def test_bad_pool_mode_rejected(self):
        with pytest.raises(ValidationError):
            MapReduceEngine(pool_mode="thread-local")

    def test_begin_job_isolates_stats(self):
        engine = MapReduceEngine()
        engine.run_round([[1]], lambda xs: xs)
        first = engine.stats
        second = engine.begin_job()
        assert second is engine.stats and second is not first
        assert first.num_rounds == 1 and second.num_rounds == 0

    def test_close_without_pool_is_noop(self):
        engine = MapReduceEngine()
        engine.close()
        engine.close()


class TestPersistentPool:
    def test_pool_survives_rounds_and_jobs(self):
        with MapReduceEngine(parallelism=2, executor="process") as engine:
            engine.run_round([[1], [2]], _double)
            pool = engine._pool
            assert pool is not None
            engine.run_round([[3], [4]], _double)
            engine.begin_job()
            outputs = engine.run_round([[5], [6]], _double)
            assert outputs == [[10], [12]]
            assert engine._pool is pool
        assert engine._pool is None  # context exit closed it

    def test_per_round_mode_spawns_no_persistent_pool(self):
        engine = MapReduceEngine(parallelism=2, executor="process",
                                 pool_mode="per-round")
        assert engine.run_round([[1], [2]], _double) == [[2], [4]]
        assert engine._pool is None

    def test_closed_engine_reopens_on_demand(self):
        engine = MapReduceEngine(parallelism=2, executor="process")
        engine.run_round([[1], [2]], _double)
        engine.close()
        assert engine.run_round([[1], [2]], _double) == [[2], [4]]
        engine.close()

    def test_broken_pool_self_heals(self):
        from concurrent.futures import BrokenExecutor

        with MapReduceEngine(parallelism=2, executor="process") as engine:
            with pytest.raises(BrokenExecutor):
                engine.run_round([[1], [2]], _die)
            # The poisoned pool was dropped; the next round gets a fresh one.
            assert engine._pool is None
            assert engine.run_round([[1], [2]], _double) == [[2], [4]]


class TestSharedDataset:
    def test_slice_selector_round_trip(self, medium_points):
        with SharedDataset(medium_points) as shared:
            ref = shared.partition((10, 25))
            assert len(ref) == 15
            resolved = ref.materialize()
            assert np.array_equal(resolved.points,
                                  medium_points.points[10:25])
            assert resolved.metric.name == medium_points.metric.name

    def test_index_selector_round_trip(self, medium_points):
        indices = np.asarray([5, 3, 250, 17])
        with SharedDataset(medium_points) as shared:
            ref = shared.partition(indices)
            assert np.array_equal(ref.materialize().points,
                                  medium_points.points[indices])

    def test_global_indices_translation(self, medium_points):
        with SharedDataset(medium_points) as shared:
            span = shared.partition((100, 120))
            assert np.array_equal(span.global_indices([0, 5]), [100, 105])
            fancy = shared.partition(np.asarray([9, 4, 7]))
            assert np.array_equal(fancy.global_indices([2, 0]), [7, 9])

    def test_descriptor_is_small_to_pickle(self, medium_points):
        import pickle

        with SharedDataset(medium_points) as shared:
            ref = shared.partition((0, len(medium_points)))
            payload = pickle.dumps(ref)
            # The whole point: descriptors stay tiny regardless of rows.
            assert len(payload) < 1024 < medium_points.points.nbytes

    def test_take_after_close_rejected(self, medium_points):
        shared = SharedDataset(medium_points)
        shared.close()
        with pytest.raises(RuntimeError):
            shared.take(np.asarray([0]))
        shared.close()  # idempotent


class TestSelectors:
    @pytest.mark.parametrize("strategy", ["random", "chunk", "adversarial"])
    def test_selectors_match_materialized_partitions(self, medium_points,
                                                     strategy):
        selectors = partition_selectors(medium_points, 4, strategy=strategy,
                                        seed=3)
        via_selectors = [materialize_selector(medium_points, s)
                         for s in selectors]
        direct = partition_points(medium_points, 4, strategy=strategy, seed=3)
        for a, b in zip(via_selectors, direct):
            assert np.array_equal(a.points, b.points)

    def test_chunk_selectors_are_spans(self, medium_points):
        selectors = partition_selectors(medium_points, 3, strategy="chunk")
        assert all(isinstance(s, tuple) for s in selectors)
        assert selectors[0][0] == 0 and selectors[-1][1] == len(medium_points)


def _double(xs):
    return [2 * x for x in xs]


def _die(xs):
    import os

    os._exit(1)


class TestPartitioners:
    def test_chunk_covers_everything(self, medium_points):
        parts = chunk_partition(medium_points, 4)
        assert sum(len(p) for p in parts) == len(medium_points)

    def test_random_is_a_partition(self, medium_points):
        parts = random_partition(medium_points, 5, seed=0)
        assert sum(len(p) for p in parts) == len(medium_points)
        stacked = np.vstack([p.points for p in parts])
        assert np.array_equal(
            np.sort(stacked, axis=0), np.sort(medium_points.points, axis=0)
        )

    def test_random_is_seed_deterministic(self, medium_points):
        a = random_partition(medium_points, 3, seed=7)
        b = random_partition(medium_points, 3, seed=7)
        assert all(np.array_equal(x.points, y.points) for x, y in zip(a, b))

    def test_adversarial_slices_by_principal_axis(self, rng):
        # Elongated cloud along x: slabs should have disjoint x-ranges.
        data = np.column_stack([np.linspace(0, 100, 60), rng.random(60)])
        parts = adversarial_partition(PointSet(data[rng.permutation(60)]), 3)
        ranges = sorted((p.points[:, 0].min(), p.points[:, 0].max()) for p in parts)
        for (lo1, hi1), (lo2, hi2) in zip(ranges, ranges[1:]):
            assert hi1 <= lo2 + 1e-9

    def test_strategy_dispatch(self, medium_points):
        for strategy in ("random", "chunk", "adversarial"):
            parts = partition_points(medium_points, 4, strategy=strategy, seed=0)
            assert len(parts) == 4
        with pytest.raises(ValidationError):
            partition_points(medium_points, 4, strategy="zigzag")

    def test_too_many_parts_rejected(self, small_points):
        with pytest.raises(ValidationError):
            chunk_partition(small_points, len(small_points) + 1)


class TestTwoRound:
    @pytest.mark.parametrize("objective", [
        "remote-edge", "remote-clique", "remote-star",
        "remote-bipartition", "remote-tree", "remote-cycle",
    ])
    def test_all_objectives(self, objective):
        pts = sphere_shell(400, 4, dim=3, seed=11)
        algo = MRDiversityMaximizer(k=4, k_prime=8, objective=objective,
                                    parallelism=4, seed=0)
        result = algo.run(pts)
        assert result.k == 4
        assert result.rounds == 2
        assert result.value > 0.0
        assert result.stats.num_rounds == 2

    def test_quality_close_to_reference(self):
        pts = sphere_shell(3000, 8, dim=3, seed=13)
        algo = MRDiversityMaximizer(k=8, k_prime=64, objective="remote-edge",
                                    parallelism=4, seed=0)
        result = algo.run(pts)
        reference = reference_value(pts, 8, "remote-edge")
        assert reference / result.value <= 1.3

    def test_local_memory_sublinear(self):
        """M_L is far below n for the 2-round algorithm (Theorem 6)."""
        pts = sphere_shell(4000, 8, dim=3, seed=17)
        algo = MRDiversityMaximizer(k=8, k_prime=16, objective="remote-edge",
                                    parallelism=8, seed=0)
        result = algo.run(pts)
        assert result.stats.max_local_memory_points < len(pts)
        # Round 1 local memory ~ n/l + k'.
        round1 = result.stats.rounds[0]
        assert round1.local_memory_points <= len(pts) // 8 + 16 + 1

    def test_randomized_mode_caps_delegates(self):
        pts = sphere_shell(1000, 8, dim=3, seed=19)
        algo = MRDiversityMaximizer(k=8, k_prime=16, objective="remote-clique",
                                    parallelism=4, seed=0)
        plain = algo.run(pts)
        randomized = algo.run(pts, randomized=True)
        cap = randomized.extra["delegate_cap"]
        assert cap is not None and cap <= 8
        assert randomized.coreset_size <= plain.coreset_size
        assert randomized.value >= plain.value / 1.5

    def test_coreset_size_bound(self):
        pts = sphere_shell(500, 4, dim=3, seed=23)
        algo = MRDiversityMaximizer(k=4, k_prime=8, objective="remote-edge",
                                    parallelism=4, seed=0)
        result = algo.run(pts)
        assert result.coreset_size <= 4 * 8  # l * k'

    def test_k_prime_lt_k_rejected(self):
        with pytest.raises(ValidationError):
            MRDiversityMaximizer(k=8, k_prime=4, objective="remote-edge")


class TestThreeRound:
    def test_runs_and_reports_three_rounds(self):
        pts = sphere_shell(800, 4, dim=3, seed=29)
        algo = MRDiversityMaximizer(k=4, k_prime=8, objective="remote-clique",
                                    parallelism=4, seed=0)
        result = algo.run_three_round(pts)
        assert result.rounds == 3
        assert result.k == 4
        assert result.stats.num_rounds == 3

    def test_memory_saving_vs_two_round(self):
        """The aggregated generalized core-set is ~k times smaller."""
        pts = sphere_shell(2000, 8, dim=3, seed=31)
        algo = MRDiversityMaximizer(k=8, k_prime=16, objective="remote-clique",
                                    parallelism=4, seed=0)
        two = algo.run(pts)
        three = algo.run_three_round(pts)
        assert three.coreset_size < two.coreset_size
        assert three.value >= two.value / 2.0

    def test_rejects_non_injective(self):
        algo = MRDiversityMaximizer(k=4, k_prime=8, objective="remote-edge",
                                    parallelism=2)
        with pytest.raises(ValidationError):
            algo.run_three_round(sphere_shell(100, 4, seed=0))


class TestMultiRound:
    def test_shrinks_to_memory_target(self):
        pts = sphere_shell(4000, 4, dim=3, seed=37)
        algo = MRDiversityMaximizer(k=4, k_prime=8, objective="remote-edge",
                                    parallelism=4, seed=0)
        result = algo.run_multi_round(pts, memory_target=100)
        assert result.extra["levels"] >= 2
        assert result.coreset_size <= 100
        assert result.k == 4

    def test_quality_survives_recursion(self):
        pts = sphere_shell(4000, 8, dim=3, seed=41)
        algo = MRDiversityMaximizer(k=8, k_prime=32, objective="remote-edge",
                                    parallelism=4, seed=0)
        result = algo.run_multi_round(pts, memory_target=400)
        reference = reference_value(pts, 8, "remote-edge")
        assert reference / result.value <= 1.5

    def test_memory_target_too_small_rejected(self):
        pts = sphere_shell(100, 4, seed=0)
        algo = MRDiversityMaximizer(k=4, k_prime=8, objective="remote-edge")
        with pytest.raises(ValidationError):
            algo.run_multi_round(pts, memory_target=4)


class TestProcessExecutor:
    def test_process_pool_matches_serial_quality(self):
        pts = sphere_shell(600, 4, dim=3, seed=43)
        serial = MRDiversityMaximizer(k=4, k_prime=8, objective="remote-edge",
                                      parallelism=2, seed=5, executor="serial")
        with MRDiversityMaximizer(k=4, k_prime=8, objective="remote-edge",
                                  parallelism=2, seed=5,
                                  executor="process") as parallel:
            r_serial = serial.run(pts)
            r_parallel = parallel.run(pts)
        # Same seed -> same partitions -> identical deterministic core-sets;
        # the zero-copy path must reproduce the serial run bit-for-bit.
        assert r_parallel.extra["zero_copy"] is True
        assert np.array_equal(r_parallel.solution.points,
                              r_serial.solution.points)
        assert r_parallel.value == r_serial.value
        assert r_parallel.coreset_size == r_serial.coreset_size

    def test_zero_copy_three_round_matches_serial(self):
        pts = sphere_shell(800, 4, dim=3, seed=47)
        serial = MRDiversityMaximizer(k=4, k_prime=8,
                                      objective="remote-clique",
                                      parallelism=3, seed=1,
                                      executor="serial")
        with MRDiversityMaximizer(k=4, k_prime=8, objective="remote-clique",
                                  parallelism=3, seed=1,
                                  executor="process") as parallel:
            r_serial = serial.run_three_round(pts)
            r_parallel = parallel.run_three_round(pts)
        assert np.array_equal(r_parallel.solution.points,
                              r_serial.solution.points)
        assert r_parallel.value == r_serial.value

    def test_zero_copy_multi_round_matches_serial(self):
        pts = sphere_shell(1500, 4, dim=3, seed=53)
        serial = MRDiversityMaximizer(k=4, k_prime=8, objective="remote-edge",
                                      parallelism=4, seed=2,
                                      executor="serial")
        with MRDiversityMaximizer(k=4, k_prime=8, objective="remote-edge",
                                  parallelism=4, seed=2,
                                  executor="process") as parallel:
            r_serial = serial.run_multi_round(pts, memory_target=120)
            r_parallel = parallel.run_multi_round(pts, memory_target=120)
        assert np.array_equal(r_parallel.solution.points,
                              r_serial.solution.points)
        assert r_parallel.extra["levels"] == r_serial.extra["levels"]

    def test_pool_reused_across_runs(self):
        pts = sphere_shell(400, 4, dim=3, seed=59)
        with MRDiversityMaximizer(k=4, k_prime=8, objective="remote-clique",
                                  parallelism=2, seed=0,
                                  executor="process") as algo:
            a = algo.run(pts)
            pool = algo.engine._pool
            assert pool is not None
            b = algo.run_three_round(pts)
            assert algo.engine._pool is pool
            # Per-run stats stay isolated despite the shared engine.
            assert a.stats.num_rounds == 2
            assert b.stats.num_rounds == 3


class TestRandomizedCap:
    def test_cap_bounds(self):
        assert randomized_delegate_cap(10**6, 128, 16) <= 128
        assert randomized_delegate_cap(100, 4, 2) >= 1
        assert randomized_delegate_cap(1, 4, 2) == 1

    def test_cap_grows_with_k_over_l(self):
        small = randomized_delegate_cap(10**6, 64, 64)
        large = randomized_delegate_cap(10**6, 4096, 4)
        assert large >= small
