"""Documentation gates: intra-repo links resolve, CLI reference is fresh.

These run in tier-1 (and again in the CI ``docs`` job next to
``mkdocs build --strict``) so documentation rot fails the build the same
way a broken unit does:

* every relative Markdown link in ``README.md`` and ``docs/`` must point
  at a file that exists;
* ``docs/cli.md`` must match a fresh rendering from the ``argparse``
  definitions (``repro.cli.render_cli_reference``) — any CLI change
  without ``python docs/generate_cli.py`` fails here;
* every page the mkdocs nav references must exist, and every docs page
  must be reachable from the nav;
* the stats-schema tables in ``docs/serving.md`` — single-index and
  registry — must each list exactly the keys a live payload emits;
  stats drift without a doc update fails here.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.cli import render_cli_reference

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs"

#: Markdown inline links: [text](target) — excluding images' inner text.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _markdown_files() -> list[Path]:
    return [REPO_ROOT / "README.md", *sorted(DOCS.glob("*.md"))]


def _relative_links(path: Path) -> list[str]:
    text = path.read_text()
    # Strip fenced code blocks: CLI help output is full of [--flag] noise.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    links = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        links.append(target)
    return links


class TestIntraRepoLinks:
    @pytest.mark.parametrize("path", _markdown_files(),
                             ids=lambda p: p.name)
    def test_relative_links_resolve(self, path):
        broken = []
        for target in _relative_links(path):
            file_part = target.split("#", 1)[0]
            if not file_part:  # pure in-page anchor
                continue
            resolved = (path.parent / file_part).resolve()
            if not resolved.is_relative_to(REPO_ROOT):
                # Forge-relative URLs (e.g. the ../../actions CI badge)
                # point above the checkout; they are not repo files.
                continue
            if not resolved.exists():
                broken.append(target)
        assert not broken, f"broken relative links in {path.name}: {broken}"

    def test_readme_links_to_every_docs_page(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for page in ("architecture.md", "paper-map.md", "service.md",
                     "cli.md"):
            assert f"docs/{page}" in readme, \
                f"README must link to docs/{page}"


class TestCliReference:
    def test_generated_reference_is_committed_and_fresh(self):
        committed = (DOCS / "cli.md").read_text()
        fresh = render_cli_reference()
        assert committed == fresh, (
            "docs/cli.md is stale — regenerate with "
            "`PYTHONPATH=src python docs/generate_cli.py`")

    def test_reference_covers_every_subcommand(self):
        from repro.cli import _COMMANDS

        reference = (DOCS / "cli.md").read_text()
        for command in _COMMANDS:
            assert f"## repro {command}" in reference


class TestMkdocsNav:
    def _nav_pages(self) -> list[str]:
        # Dependency-free parse: nav entries look like "  - Title: page.md".
        pages = []
        in_nav = False
        for line in (REPO_ROOT / "mkdocs.yml").read_text().splitlines():
            if line.startswith("nav:"):
                in_nav = True
                continue
            if in_nav:
                if line and not line.startswith((" ", "-")):
                    break
                match = re.search(r":\s*(\S+\.md)\s*$", line)
                if match:
                    pages.append(match.group(1))
        return pages

    def test_nav_pages_exist(self):
        pages = self._nav_pages()
        assert pages, "mkdocs.yml must declare a nav"
        for page in pages:
            assert (DOCS / page).exists(), f"nav references missing {page}"

    def test_every_docs_page_is_in_nav(self):
        pages = set(self._nav_pages())
        on_disk = {path.name for path in DOCS.glob("*.md")}
        assert on_disk == pages, (
            f"docs/ pages and mkdocs nav disagree: "
            f"only on disk {on_disk - pages}, only in nav {pages - on_disk}")


def _documented_keys(marker: str) -> set[str]:
    """Backtick-quoted keys between ``<!-- marker:start/end -->``."""
    text = (DOCS / "serving.md").read_text()
    table = text.split(f"<!-- {marker}:start -->", 1)[1]
    table = table.split(f"<!-- {marker}:end -->", 1)[0]
    keys = set()
    for line in table.splitlines():
        match = re.match(r"\|\s*`([^`]+)`\s*\|", line)
        if match and match.group(1) != "Key":
            keys.add(match.group(1))
    return keys


class TestStatsSchemaTable:
    """``docs/serving.md``'s key table must match what a daemon emits."""

    def _documented_keys(self) -> set[str]:
        return _documented_keys("stats-keys")

    @staticmethod
    def _flatten(payload: dict, prefix: str = "") -> set[str]:
        keys = set()
        for name, value in payload.items():
            path = f"{prefix}{name}"
            if isinstance(value, dict) and value:
                keys |= TestStatsSchemaTable._flatten(value, f"{path}.")
            else:
                keys.add(path)
        return keys

    def test_table_matches_emitted_keys(self):
        import numpy as np

        from repro.metricspace.points import PointSet
        from repro.service import (
            DiversityServer,
            DiversityService,
            build_coreset_index,
        )

        rng = np.random.default_rng(0)
        index = build_coreset_index(PointSet(rng.normal(size=(40, 3))), 3,
                                    seed=0)
        with DiversityService(index, cache_size=8) as service:
            emitted = self._flatten(DiversityServer(service).stats())
        documented = self._documented_keys()
        assert documented, "serving.md stats table markers missing or empty"
        assert emitted == documented, (
            f"docs/serving.md stats table drifted from the live payload: "
            f"undocumented {sorted(emitted - documented)}, "
            f"stale {sorted(documented - emitted)}")


class TestRegistryStatsSchemaTable:
    """The registry stats table must match ``IndexRegistry.stats()``."""

    def test_table_matches_emitted_keys(self):
        import numpy as np

        from repro.metricspace.points import PointSet
        from repro.service import IndexRegistry, build_coreset_index

        rng = np.random.default_rng(0)
        index = build_coreset_index(PointSet(rng.normal(size=(40, 3))), 3,
                                    seed=0)
        with IndexRegistry() as registry:
            registry.register("demo", index)
            registry.query("demo", "remote-edge", 3)
            stats = registry.stats()
        # Per-tenant blocks are keyed by dataset_id; the table documents
        # them once under the <dataset> placeholder.
        per_tenant = stats["tenants"]["per_tenant"]
        stats["tenants"]["per_tenant"] = {
            "<dataset>": next(iter(per_tenant.values()))}
        emitted = TestStatsSchemaTable._flatten(stats)
        documented = _documented_keys("registry-stats-keys")
        assert documented, \
            "serving.md registry stats table markers missing or empty"
        assert emitted == documented, (
            f"docs/serving.md registry stats table drifted: "
            f"undocumented {sorted(emitted - documented)}, "
            f"stale {sorted(documented - emitted)}")


class TestPlannerStatsSchemaTable:
    """The query-planner table must match the ``planner`` stats block."""

    def test_table_matches_emitted_keys(self):
        import numpy as np

        from repro.metricspace.points import PointSet
        from repro.service import DiversityService, build_coreset_index

        rng = np.random.default_rng(0)
        index = build_coreset_index(PointSet(rng.normal(size=(40, 3))), 3,
                                    seed=0)
        with DiversityService(index, cache_size=8, plan="auto") as service:
            service.query("remote-edge", 3)
            emitted = TestStatsSchemaTable._flatten(
                service.stats()["planner"])
        documented = _documented_keys("planner-stats-keys")
        assert documented, \
            "serving.md planner stats table markers missing or empty"
        assert emitted == documented, (
            f"docs/serving.md planner stats table drifted: "
            f"undocumented {sorted(emitted - documented)}, "
            f"stale {sorted(documented - emitted)}")


class TestQosStatsSchemaTable:
    """The Tenant QoS table must match the live WDRR scheduler block."""

    def test_table_matches_emitted_keys(self):
        from repro.service import TenantQuota, WeightedDeficitRoundRobin

        scheduler = WeightedDeficitRoundRobin(
            {"demo": TenantQuota(weight=2.0)})
        scheduler.admit("demo", object())
        scheduler.take()
        scheduler.record_latency("demo", 0.001)
        stats = scheduler.stats()
        # One tenant block stands in for every tenant, documented under
        # the <dataset> placeholder like the registry table.
        stats["per_tenant"] = {"<dataset>": stats["per_tenant"]["demo"]}
        emitted = TestStatsSchemaTable._flatten(stats)
        documented = _documented_keys("qos-stats-keys")
        assert documented, \
            "serving.md qos stats table markers missing or empty"
        assert emitted == documented, (
            f"docs/serving.md qos stats table drifted: "
            f"undocumented {sorted(emitted - documented)}, "
            f"stale {sorted(documented - emitted)}")
