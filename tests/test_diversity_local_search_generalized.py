"""Tests for local search and generalized (multiset) diversity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coresets.generalized import GeneralizedCoreset
from repro.diversity.exact import divk_exact
from repro.diversity.generalized import (
    gen_divk_exact,
    generalized_diversity,
    instantiate_offline,
    solve_generalized,
)
from repro.diversity.local_search import local_search_remote_clique
from repro.diversity.measures import remote_clique_value
from repro.exceptions import ValidationError
from repro.metricspace.distance import EuclideanMetric
from repro.metricspace.points import PointSet


def _dist(points: np.ndarray) -> np.ndarray:
    return np.linalg.norm(points[:, None] - points[None, :], axis=2)


class TestLocalSearch:
    def test_improves_bad_start(self, rng):
        pts = rng.random((30, 2))
        dist = _dist(pts)
        start = np.arange(4, dtype=np.intp)
        start_value = remote_clique_value(dist[np.ix_(start, start)])
        indices, swaps = local_search_remote_clique(dist, 4, initial=start)
        final_value = remote_clique_value(dist[np.ix_(indices, indices)])
        assert final_value >= start_value - 1e-12
        assert len(set(indices.tolist())) == 4

    def test_local_optimality(self, rng):
        """At termination no single swap improves the objective."""
        pts = rng.random((15, 2))
        dist = _dist(pts)
        indices, _ = local_search_remote_clique(dist, 3)
        value = remote_clique_value(dist[np.ix_(indices, indices)])
        outside = np.setdiff1d(np.arange(15), indices)
        for pos in range(3):
            for candidate in outside:
                trial = indices.copy()
                trial[pos] = candidate
                trial_value = remote_clique_value(dist[np.ix_(trial, trial)])
                assert trial_value <= value + 1e-9

    def test_near_optimal_on_small_instance(self, rng):
        pts = PointSet(rng.random((10, 2)))
        optimum = divk_exact(pts, 3, "remote-clique")
        indices, _ = local_search_remote_clique(pts.pairwise(), 3)
        achieved = remote_clique_value(pts.pairwise()[np.ix_(indices, indices)])
        # 1-swap local optima are within factor 2 of optimal; usually exact.
        assert achieved >= optimum / 2.0 - 1e-9

    def test_k_equals_n_no_swaps(self, rng):
        dist = _dist(rng.random((5, 2)))
        indices, swaps = local_search_remote_clique(dist, 5)
        assert swaps == 0
        assert sorted(indices.tolist()) == list(range(5))

    def test_bad_initial_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            local_search_remote_clique(_dist(rng.random((6, 2))), 3,
                                       initial=np.asarray([0, 1]))


def _gcore(points, mult):
    return GeneralizedCoreset(points=np.asarray(points, dtype=float),
                              multiplicities=np.asarray(mult),
                              metric=EuclideanMetric())


class TestGeneralizedDiversity:
    def test_expansion_distances(self):
        core = _gcore([[0.0], [3.0]], [2, 1])
        dist = core.expanded_distance_matrix()
        assert dist.shape == (3, 3)
        assert dist[0, 1] == pytest.approx(0.0)  # two replicas of 0.0
        assert dist[0, 2] == pytest.approx(3.0)

    def test_gen_div_clique_counts_replicas(self):
        core = _gcore([[0.0], [3.0]], [2, 1])
        # Pairs: (0,0')=0, (0,3)=3, (0',3)=3 -> 6.
        assert generalized_diversity(core, "remote-clique") == pytest.approx(6.0)

    def test_gen_divk_exact(self):
        core = _gcore([[0.0], [3.0], [10.0]], [2, 1, 1])
        # Best 2 of the expansion for clique: {0, 10} -> 10.
        assert gen_divk_exact(core, 2, "remote-clique") == pytest.approx(10.0)

    def test_gen_divk_rejects_k_too_large(self):
        core = _gcore([[0.0]], [2])
        with pytest.raises(ValidationError):
            gen_divk_exact(core, 3, "remote-clique")


class TestSolveGeneralized:
    def test_coherent_output_of_size_k(self):
        core = _gcore([[0.0], [5.0], [9.0]], [3, 3, 3])
        subset = solve_generalized(core, 4, "remote-clique")
        assert subset.expanded_size == 4
        assert np.all(subset.multiplicities <= 3)

    def test_matches_fact2_quality(self):
        """The adapted solver is within alpha=2 of gen-div_k (Fact 2)."""
        core = _gcore([[0.0], [2.0], [7.0], [11.0]], [2, 1, 2, 1])
        for k in (2, 3, 4):
            best = gen_divk_exact(core, k, "remote-clique")
            subset = solve_generalized(core, k, "remote-clique")
            achieved = generalized_diversity(subset, "remote-clique")
            assert achieved >= best / 2.0 - 1e-9

    def test_prefers_spread_kernel_points(self):
        core = _gcore([[0.0], [0.1], [100.0]], [5, 5, 5])
        subset = solve_generalized(core, 2, "remote-clique")
        coords = sorted(float(p[0]) for p in subset.points)
        assert coords[-1] == pytest.approx(100.0)


class TestInstantiation:
    def test_exact_materialization(self):
        pool = PointSet([[0.0], [0.05], [0.1], [5.0], [5.05]])
        subset = _gcore([[0.0], [5.0]], [2, 2])
        indices, ok = instantiate_offline(subset, pool, delta=0.2)
        assert ok
        assert len(indices) == 4
        assert len(set(indices.tolist())) == 4
        chosen = sorted(float(pool.points[i][0]) for i in indices)
        assert chosen == [0.0, 0.05, 5.0, 5.05]

    def test_lemma7_error_bound(self, rng):
        """div(I(T)) >= gen-div(T) - f(k) * 2 * delta (Lemma 7)."""
        pts = np.sort(rng.random(12) * 10.0).reshape(-1, 1)
        pool = PointSet(pts)
        kernel = np.asarray([[1.0], [5.0], [9.0]])
        subset = GeneralizedCoreset(points=kernel,
                                    multiplicities=np.asarray([2, 1, 1]),
                                    metric=EuclideanMetric())
        delta = 2.0
        indices, ok = instantiate_offline(subset, pool, delta=delta)
        k = subset.expanded_size
        gen_value = generalized_diversity(subset, "remote-clique")
        inst = pool.subset(indices)
        value = remote_clique_value(inst.pairwise())
        f_k = k * (k - 1) // 2
        assert value >= gen_value - f_k * 2.0 * delta - 1e-9

    def test_shortfall_flag(self):
        pool = PointSet([[0.0], [100.0]])
        subset = _gcore([[0.0]], [2])  # needs 2 delegates near 0.0
        indices, ok = instantiate_offline(subset, pool, delta=0.5)
        assert not ok
        assert len(indices) == 2  # filled from the nearest unused points

    def test_negative_delta_rejected(self):
        pool = PointSet([[0.0]])
        subset = _gcore([[0.0]], [1])
        with pytest.raises(ValidationError):
            instantiate_offline(subset, pool, delta=-1.0)
