"""Tests for the dataset generators and loaders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.loaders import load_points, save_points
from repro.datasets.synthetic import (
    gaussian_clusters,
    sphere_shell,
    uniform_cube,
    unit_sphere_surface,
)
from repro.datasets.text import zipf_bag_of_words


class TestSphereSurface:
    def test_unit_norm(self, rng):
        pts = unit_sphere_surface(50, dim=4, seed=0)
        assert np.allclose(np.linalg.norm(pts, axis=1), 1.0)

    def test_deterministic(self):
        a = unit_sphere_surface(10, seed=5)
        b = unit_sphere_surface(10, seed=5)
        assert np.array_equal(a, b)


class TestSphereShell:
    def test_structure(self):
        pts = sphere_shell(500, 8, dim=3, inner_radius=0.8, seed=0)
        norms = np.linalg.norm(pts.points, axis=1)
        on_surface = np.isclose(norms, 1.0, atol=1e-9)
        assert on_surface.sum() == 8
        assert np.all(norms[~on_surface] <= 0.8 + 1e-12)

    def test_shuffle_disperses_planted_points(self):
        pts = sphere_shell(1000, 8, dim=3, seed=0, shuffle=True)
        norms = np.linalg.norm(pts.points, axis=1)
        planted = np.flatnonzero(np.isclose(norms, 1.0))
        # With shuffling the planted indices should not be the first 8.
        assert set(planted.tolist()) != set(range(8))

    def test_no_shuffle_keeps_planted_first(self):
        pts = sphere_shell(100, 4, dim=3, seed=0, shuffle=False)
        norms = np.linalg.norm(pts.points, axis=1)
        assert np.allclose(norms[:4], 1.0)

    def test_k_equals_n(self):
        pts = sphere_shell(5, 5, dim=2, seed=0)
        assert np.allclose(np.linalg.norm(pts.points, axis=1), 1.0)

    def test_k_gt_n_rejected(self):
        with pytest.raises(ValueError):
            sphere_shell(4, 5)

    def test_planted_points_are_diverse(self):
        """The planted surface points realize min pairwise distance well
        above what random inner points achieve — the generator's purpose."""
        pts = sphere_shell(300, 8, dim=3, seed=1, shuffle=False)
        surface = pts.subset(range(8))
        dist = surface.pairwise()
        iu, ju = np.triu_indices(8, k=1)
        assert dist[iu, ju].min() > 0.2


class TestOtherGenerators:
    def test_uniform_cube_bounds(self, rng):
        pts = uniform_cube(100, dim=2, side=3.0, seed=0)
        assert pts.points.min() >= 0.0
        assert pts.points.max() <= 3.0

    def test_gaussian_clusters_shape(self):
        pts = gaussian_clusters(120, centers=4, dim=3, seed=0)
        assert len(pts) == 120
        assert pts.dim == 3


class TestBagOfWords:
    def test_shape_and_metric(self):
        docs = zipf_bag_of_words(50, vocab_size=200, seed=0)
        assert len(docs) == 50
        assert docs.dim == 200
        assert docs.metric.name == "cosine"

    def test_counts_are_non_negative_integers(self):
        docs = zipf_bag_of_words(30, vocab_size=100, seed=1)
        assert np.all(docs.points >= 0)
        assert np.allclose(docs.points, np.round(docs.points))

    def test_min_distinct_words_filter(self):
        docs = zipf_bag_of_words(40, vocab_size=300, min_distinct_words=10,
                                 seed=2)
        distinct = (docs.points > 0).sum(axis=1)
        assert np.all(distinct >= 10)

    def test_deterministic(self):
        a = zipf_bag_of_words(20, vocab_size=100, seed=3)
        b = zipf_bag_of_words(20, vocab_size=100, seed=3)
        assert np.array_equal(a.points, b.points)

    def test_document_lengths_in_range(self):
        docs = zipf_bag_of_words(30, vocab_size=200,
                                 words_per_doc=(20, 40), seed=4)
        lengths = docs.points.sum(axis=1)
        assert np.all(lengths >= 20) and np.all(lengths <= 40)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            zipf_bag_of_words(10, vocab_size=5, min_distinct_words=10)
        with pytest.raises(ValueError):
            zipf_bag_of_words(10, words_per_doc=(0, 5))


class TestLoaders:
    def test_roundtrip(self, tmp_path, rng):
        pts = zipf_bag_of_words(10, vocab_size=50, seed=0)
        save_points(pts, tmp_path / "docs")
        loaded = load_points(tmp_path / "docs")
        assert np.array_equal(loaded.points, pts.points)
        assert loaded.metric.name == "cosine"

    def test_creates_parent_dirs(self, tmp_path, rng):
        pts = uniform_cube(5, seed=0)
        save_points(pts, tmp_path / "deep" / "nested" / "data")
        assert load_points(tmp_path / "deep" / "nested" / "data").dim == 3
