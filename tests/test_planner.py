"""Tests for the cost-model query planner (``plan="auto"``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import sphere_shell
from repro.diversity.objectives import list_objectives
from repro.exceptions import ValidationError
from repro.service import (
    CostModel,
    DiversityService,
    Plan,
    Query,
    QueryPlanner,
    build_coreset_index,
    explain_plan,
)
from repro.service.planner import MATRIX_CACHED, MATRIX_COMPUTE, MATRIX_SHARED


@pytest.fixture(scope="module")
def dataset():
    return sphere_shell(1200, 12, dim=3, seed=7)


@pytest.fixture(scope="module")
def index(dataset):
    return build_coreset_index(dataset, k_max=16, k_min=4, parallelism=4,
                               seed=0)


@pytest.fixture(scope="module")
def index32(dataset):
    return build_coreset_index(dataset, k_max=16, k_min=4, parallelism=4,
                               seed=0, dtype="float32")


class _FakeRung:
    """Just enough rung surface for the planner: a key and a sized coreset."""

    def __init__(self, key, n):
        self.key = key
        self.coreset = np.zeros((n, 1))


def _query(objective="remote-edge", k=8):
    return Query(objective, k)


class TestCostModel:
    def test_empty_payload_is_the_default_model(self):
        model = CostModel.from_payload({})
        assert model == CostModel.default()
        assert model.calibrated is False
        assert CostModel.from_payload(None) == CostModel.default()
        assert CostModel.from_payload("junk") == CostModel.default()

    def test_round_trip(self):
        model = CostModel.default()
        model.calibrated = True
        model.scale = 1.3
        model.solve_scale["process"] = 0.25
        model.query_overhead_seconds = 5e-5
        assert CostModel.from_payload(model.to_payload()) == model

    def test_malformed_fields_fall_back(self):
        payload = {
            "matrix_seconds_per_cell": {"float64": "fast", "float32": -1.0},
            "dispatch_seconds": {"process": True},  # bools are not rates
            "shared_fill_factor": 0.0,              # must be positive
            "scale": 1e9,                           # clamped into band
            "calibrated": 1,
        }
        model = CostModel.from_payload(payload)
        default = CostModel.default()
        assert model.matrix_seconds_per_cell == default.matrix_seconds_per_cell
        assert model.dispatch_seconds == default.dispatch_seconds
        assert model.shared_fill_factor == default.shared_fill_factor
        assert model.scale == 10.0
        assert model.calibrated is True

    def test_observe_moves_scale_toward_ratio_clamped(self):
        model = CostModel.default()
        model.observe(predicted=1.0, measured=2.0)
        assert 1.0 < model.scale < 2.0  # EMA step, not a jump
        for _ in range(100):
            model.observe(predicted=1.0, measured=1000.0)
        assert model.scale == pytest.approx(10.0)  # band ceiling
        # Degenerate observations are ignored.
        before = model.scale
        model.observe(predicted=0.0, measured=1.0)
        model.observe(predicted=1.0, measured=0.0)
        assert model.scale == before

    def test_unknown_keys_fall_back_to_defaults(self):
        model = CostModel.default()
        assert model.matrix_seconds(10, "float16") >= 0
        assert model.solve_seconds("no-such-objective", 4, 10) > 0
        assert model.dispatch_overhead("no-such-executor") == 0.0


class TestPlannerChoices:
    """Deterministic plans from synthetic cost tables — nothing is timed."""

    @staticmethod
    def _model(*, dispatch_process=0.0, process_scale=0.5, thread=1e9):
        model = CostModel.default()
        model.dispatch_seconds = {"serial": 0.0, "thread": thread,
                                  "process": dispatch_process}
        model.solve_scale = {"serial": 1.0, "thread": 1.0,
                             "process": process_scale}
        model.query_overhead_seconds = 0.0
        return model

    def test_dispatch_dominated_batch_stays_serial(self):
        planner = QueryPlanner(self._model(dispatch_process=10.0))
        rung = _FakeRung(("gmm", 8, 32), 32)
        plan = planner.plan_batch([_query()], [rung], "float64",
                                  lambda key: True)
        assert plan.executor == "serial"
        assert plan.matrix_strategy == {rung.key: MATRIX_CACHED}

    def test_solve_dominated_batch_goes_process(self):
        model = self._model(dispatch_process=1e-6, process_scale=0.25)
        model.solve_seconds_per_cell["remote-edge"] = 1.0  # huge solves
        planner = QueryPlanner(model)
        rungs = [_FakeRung(("gmm", 16, 64), 64) for _ in range(4)]
        queries = [_query(k=9 + i) for i in range(4)]
        plan = planner.plan_batch(queries, rungs, "float64", lambda key: True)
        assert plan.executor == "process"
        # Non-resident matrices on the process path fill shared segments.
        plan = planner.plan_batch(queries, rungs, "float64",
                                  lambda key: False)
        assert plan.matrix_strategy == {("gmm", 16, 64): MATRIX_SHARED}

    def test_serial_compute_strategy_for_cold_matrix(self):
        planner = QueryPlanner(self._model(dispatch_process=10.0))
        rung = _FakeRung(("smm", 4, 16), 16)
        plan = planner.plan_batch([_query()], [rung], "float64",
                                  lambda key: False)
        assert plan.executor == "serial"
        assert plan.matrix_strategy == {rung.key: MATRIX_COMPUTE}
        assert plan.breakdown["matrix"] > 0

    def test_equal_costs_tie_break_toward_serial(self):
        model = self._model(dispatch_process=0.0, process_scale=1.0,
                            thread=0.0)
        planner = QueryPlanner(model)
        plan = planner.plan_batch([_query()], [_FakeRung(("g", 8, 32), 32)],
                                  "float64", lambda key: True)
        assert plan.executor == "serial"

    def test_cached_queries_cost_only_overhead(self):
        model = self._model()
        model.query_overhead_seconds = 1e-4
        planner = QueryPlanner(model)
        rung = _FakeRung(("gmm", 8, 32), 32)
        plan = planner.plan_batch([_query(), _query(k=9)], [rung, rung],
                                  "float64", lambda key: True,
                                  cached_flags=[True, True])
        assert plan.solves == 0
        assert plan.predicted_seconds == pytest.approx(2e-4)

    def test_in_batch_repeats_priced_once(self):
        planner = QueryPlanner(self._model())
        rung = _FakeRung(("gmm", 8, 32), 32)
        once = planner.plan_batch([_query()], [rung], "float64",
                                  lambda key: True)
        thrice = planner.plan_batch([_query()] * 3, [rung] * 3, "float64",
                                    lambda key: True)
        assert thrice.solves == once.solves == 1

    def test_float32_matrices_predict_cheaper(self):
        model = CostModel.default()
        planner = QueryPlanner(model)
        rung = _FakeRung(("gmm", 8, 64), 64)
        wide = planner.plan_batch([_query()], [rung], "float64",
                                  lambda key: False)
        narrow = planner.plan_batch([_query()], [rung], "float32",
                                    lambda key: False)
        assert narrow.breakdown["matrix"] < wide.breakdown["matrix"]

    def test_explain_plan_names_winner_and_candidates(self):
        planner = QueryPlanner(self._model(dispatch_process=10.0))
        rung = _FakeRung(("gmm", 8, 32), 32)
        plan = planner.plan_batch([_query()], [rung], "float64",
                                  lambda key: False)
        text = explain_plan(plan, planner.model)
        assert "-> serial" in text
        assert "rung gmm" in text and "matrix compute" in text


class TestPlannerMetrics:
    def test_record_updates_stats(self):
        planner = QueryPlanner(CostModel.default())
        plan = planner.plan_batch([_query()], [_FakeRung(("g", 8, 32), 32)],
                                  "float64", lambda key: True)
        planner.record(plan, plan.predicted_seconds)  # perfect prediction
        stats = planner.stats()
        assert stats["planned"] == 1
        assert stats["plans"][plan.executor] == 1
        assert stats["mean_rel_error"] == pytest.approx(0.0)
        assert stats["measured_seconds"] == pytest.approx(
            stats["predicted_seconds"])

    def test_mean_rel_error_is_none_until_recorded(self):
        assert QueryPlanner().stats()["mean_rel_error"] is None

    def test_sample_log_is_bounded(self):
        planner = QueryPlanner(CostModel.default())
        plan = planner.plan_batch([_query()], [_FakeRung(("g", 8, 32), 32)],
                                  "float64", lambda key: True)
        for _ in range(QueryPlanner.MAX_SAMPLES + 1):
            planner.record(plan, 1e-4)
        assert len(planner.samples()) <= QueryPlanner.MAX_SAMPLES
        assert planner.stats()["planned"] == QueryPlanner.MAX_SAMPLES + 1

    def test_record_feeds_the_online_scale(self):
        planner = QueryPlanner(CostModel.default())
        plan = planner.plan_batch([_query()], [_FakeRung(("g", 8, 32), 32)],
                                  "float64", lambda key: False)
        planner.record(plan, plan.predicted_seconds * 4)
        assert planner.model.scale > 1.0


class TestAutoStaticIdentity:
    """``plan="auto"`` must answer bit-identically to ``plan="static"``."""

    def test_all_objectives_both_dtypes(self, index, index32):
        queries = [Query(objective, k)
                   for objective in list_objectives()
                   for k in (4, 9)]
        for idx in (index, index32):
            with DiversityService(idx) as static, \
                    DiversityService(idx, plan="auto") as auto:
                expected = static.query_batch(queries)
                actual = auto.query_batch(queries)
                for a, b in zip(expected, actual):
                    assert list(a.indices) == list(b.indices)
                    assert a.value == b.value
                assert auto.stats()["planner"]["planned"] == 1

    def test_identity_when_model_forces_another_executor(self, index):
        model = CostModel.default()
        model.dispatch_seconds = {"serial": 10.0, "thread": 0.0,
                                  "process": 10.0}
        planner = QueryPlanner(model)
        queries = [Query("remote-edge", k) for k in (4, 6, 9)]
        with DiversityService(index) as static, \
                DiversityService(index, plan="auto",
                                 planner=planner) as forced:
            expected = static.query_batch(queries)
            actual = forced.query_batch(queries)
            for a, b in zip(expected, actual):
                assert list(a.indices) == list(b.indices)
            assert forced.stats()["planner"]["plans"]["thread"] == 1

    def test_explicit_executor_bypasses_the_planner(self, index):
        with DiversityService(index, plan="auto") as service:
            service.query_batch([_query()], executor="serial")
            assert service.stats()["planner"]["planned"] == 0

    def test_static_mode_never_plans(self, index):
        with DiversityService(index) as service:
            service.query_batch([_query()])
            stats = service.stats()["planner"]
            assert stats == {"mode": "static", "calibrated": False,
                             "planned": 0, "predicted_seconds": 0.0,
                             "measured_seconds": 0.0, "mean_rel_error": None,
                             "plans": {"serial": 0, "thread": 0,
                                       "process": 0}}

    def test_plan_mode_validated(self, index):
        with pytest.raises(ValidationError):
            DiversityService(index, plan="adaptive")


class TestRoutingDecisions:
    """Regression: exactly one routing decision per query, on every path."""

    def test_single_query_routes_once(self, index):
        with DiversityService(index) as service:
            service.query("remote-edge", 6)
            assert service.stats()["counters"]["routing_decisions"] == 1
            service.query("remote-edge", 6)  # cache hit still routes once
            assert service.stats()["counters"]["routing_decisions"] == 2

    def test_batch_routes_once_per_query(self, index):
        with DiversityService(index) as service:
            service.query_batch([_query(k=k) for k in (4, 6, 9)])
            assert service.stats()["counters"]["routing_decisions"] == 3

    def test_concurrent_and_auto_paths_count_too(self, index):
        with DiversityService(index, plan="auto") as service:
            service.query_concurrent([_query(k=4), _query(k=6)],
                                     max_workers=2)
            service.query("remote-clique", 5)
            assert service.stats()["counters"]["routing_decisions"] == 3


class TestPreviewAndSignature:
    def test_preview_moves_no_counters(self, index):
        with DiversityService(index, plan="auto") as service:
            plan = service.preview_plan([_query()])
            assert isinstance(plan, Plan)
            assert plan.breakdown["candidates"].keys() == {
                "serial", "thread", "process"}
            stats = service.stats()
            assert stats["planner"]["planned"] == 0
            assert stats["counters"]["routing_decisions"] == 0

    def test_preview_rejects_empty(self, index):
        with DiversityService(index, plan="auto") as service:
            with pytest.raises(ValidationError):
                service.preview_plan([])

    def test_signature_static_is_none(self, index):
        with DiversityService(index) as service:
            assert service.plan_signature([_query()]) is None

    def test_signature_auto_is_the_plan_class(self, index):
        with DiversityService(index, plan="auto") as service:
            signature = service.plan_signature([_query()])
            assert signature is not None
            assert signature[0] == "auto" and signature[1] in (
                "serial", "thread", "process")

    def test_signature_never_faults_a_lazy_index(self, dataset):
        with DiversityService(points=dataset, k_max=8,
                              plan="auto") as service:
            assert service.plan_signature([_query(k=4)]) is None
            assert service.index is None  # grouping must not build it
