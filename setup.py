"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so
that editable installs work on environments without the ``wheel`` package
(``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import setup

setup()
